package sched

import (
	"strings"
	"testing"

	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
)

func TestTimelineShowsStallsAndLatency(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, loadStall())
	base := InOrder(d, m)
	out := Timeline(d, m, base)
	if !strings.Contains(out, "(stall)") {
		t.Errorf("in-order timeline should show the load stall:\n%s", out)
	}
	if !strings.Contains(out, "ld [%fp-4], %o0 =") {
		t.Errorf("latency marks missing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 4 { // ld, stall, add, mov
		t.Errorf("timeline has %d lines:\n%s", lines, out)
	}
}

func TestTimelineDualIssueSharesCycleRow(t *testing.T) {
	m := machine.Super2()
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.Fp3(isa.FADDS, isa.F(1), isa.F(2), isa.F(3)),
	}
	d := buildDAG(t, dag.TableForward{}, m, insts)
	out := Timeline(d, m, InOrder(d, m))
	// Both instructions issue in cycle 0: exactly one "cycle   0" header.
	if strings.Count(out, "cycle   0") != 1 {
		t.Errorf("dual-issued pair should share one cycle row:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("timeline should have two instruction lines:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, nil)
	if got := Timeline(d, m, InOrder(d, m)); got != "(empty schedule)\n" {
		t.Errorf("empty timeline = %q", got)
	}
}
