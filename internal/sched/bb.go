package sched

import (
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/machine"
)

// MaxBranchAndBound is the largest block the optimal scheduler accepts;
// the state space is exponential, which is why the paper proposes
// branch-and-bound only "for small basic blocks" (Section 7).
const MaxBranchAndBound = 24

// BranchAndBound finds a makespan-optimal schedule for a small block by
// depth-first search over issue orders with two prunings: a
// critical-path lower bound (max delay to a leaf, the Table 1
// heuristic, reused here as an admissible estimate) and dominance
// memoization on (scheduled-set, completion state). It implements the
// paper's future-work item "determining if an optimal branch-and-bound
// scheduler would benefit performance for small basic blocks".
//
// The incumbent is seeded with the Krishnamurthy list schedule, so the
// search never returns anything worse than the heuristic result. It
// panics if the block exceeds MaxBranchAndBound instructions.
func BranchAndBound(d *dag.DAG, m *machine.Model) *Result {
	n := d.Len()
	if n > MaxBranchAndBound {
		panic("sched: block too large for branch and bound")
	}
	if n == 0 {
		return &Result{}
	}
	a := heur.New(d, m)
	a.ComputeBackward()
	a.ComputeLocal()

	// cpl[i] is the remaining critical-path length once i issues: its
	// own latency, or an arc delay plus a child's remaining path if that
	// is longer. An admissible completion bound for any state.
	cpl := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		cpl[i] = a.ExecTime[i]
		for _, arc := range d.Nodes[i].Succs {
			if v := arc.Delay + cpl[arc.To]; v > cpl[i] {
				cpl[i] = v
			}
		}
	}

	// Incumbent: the Krishnamurthy heuristic schedule.
	inc := Krishnamurthy().Run(d, m)
	bb := &bbSearch{
		d: d, m: m, a: a, cpl: cpl,
		bestCycles: inc.Cycles,
		bestOrder:  append([]int32(nil), inc.Order...),
		seen:       make(map[uint64]bool),
		pinned:     pinnedTail(d),
	}
	s := newState(d, m, a)
	bb.search(s, 0)
	return Timed(d, m, bb.bestOrder)
}

type bbSearch struct {
	d          *dag.DAG
	m          *machine.Model
	a          *heur.Annot
	cpl        []int32 // remaining critical-path length per node
	bestCycles int32
	bestOrder  []int32
	seen       map[uint64]bool // fully-explored timing states
	pinned     []bool
}

// search extends the partial schedule in s; depth is the number of
// nodes already placed.
func (b *bbSearch) search(s *State, depth int32) {
	n := int32(b.d.Len())
	if depth == n {
		r := s.result()
		if r.Cycles < b.bestCycles {
			b.bestCycles = r.Cycles
			b.bestOrder = append(b.bestOrder[:0], s.order...)
		}
		return
	}
	// Lower bound: every unscheduled node must still run its critical
	// path to a leaf after it becomes executable.
	lb := int32(0)
	for i := int32(0); i < n; i++ {
		if s.scheduled[i] {
			if v := s.issue[i] + b.a.ExecTime[i]; v > lb {
				lb = v
			}
			continue
		}
		if v := s.eet[i] + b.cpl[i]; v > lb {
			lb = v
		}
	}
	if lb >= b.bestCycles {
		return
	}
	// Duplicate-state detection: permutations of independent picks often
	// reach the same timing state; a state explored once never needs a
	// second visit (the first visit already found the best completion
	// reachable below the then-current — hence also the current —
	// incumbent).
	key := s.stateKey()
	if b.seen[key] {
		return
	}
	b.seen[key] = true

	for i := int32(0); i < n; i++ {
		if s.scheduled[i] || s.unschedParents[i] != 0 {
			continue
		}
		if b.pinned[i] && depth != n-1 {
			continue // the block-ending CTI stays last
		}
		saved := s.snapshot()
		s.place(i)
		b.search(s, depth+1)
		s.restore(saved)
	}
}

// stateKey hashes the complete timing state (FNV-1a): scheduled set,
// clock, issue-slot usage, the EETs of unscheduled nodes, and
// function-unit busy times. Identical keys mean identical subtrees.
func (s *State) stateKey() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(uint64(s.time))
	mix(uint64(s.usedSlots)<<32 | uint64(uint32(s.usedGroups)))
	// The partial completion (latest finish among scheduled nodes) is
	// part of the state: the best total through a state is
	// max(partial, best remaining), so two states only share a subtree
	// outcome when both halves match.
	var partial int32
	for i := range s.scheduled {
		if s.scheduled[i] {
			mix(uint64(i)<<1 | 1)
			if fin := s.issue[i] + int32(s.M.Latency(s.D.Nodes[i].Inst.Op)); fin > partial {
				partial = fin
			}
		} else {
			mix(uint64(s.eet[i]) << 1)
		}
	}
	mix(uint64(partial))
	for _, units := range s.unitBusy {
		for _, t := range units {
			mix(uint64(t) + 0x9e3779b9)
		}
	}
	return h
}

// snapshot captures the mutable scheduling state for backtracking.
type bbSnap struct {
	time       int32
	usedSlots  int
	usedGroups int
	last       int32
	orderLen   int
	eet        []int32
	parents    []int32
	units      [][]int32
}

func (s *State) snapshot() *bbSnap {
	sn := &bbSnap{
		time: s.time, usedSlots: s.usedSlots, usedGroups: s.usedGroups,
		last: s.last, orderLen: len(s.order),
		eet:     append([]int32(nil), s.eet...),
		parents: append([]int32(nil), s.unschedParents...),
	}
	for _, u := range s.unitBusy {
		if u == nil {
			sn.units = append(sn.units, nil)
		} else {
			sn.units = append(sn.units, append([]int32(nil), u...))
		}
	}
	return sn
}

func (s *State) restore(sn *bbSnap) {
	for _, node := range s.order[sn.orderLen:] {
		s.scheduled[node] = false
		s.issue[node] = -1
	}
	s.order = s.order[:sn.orderLen]
	s.time, s.usedSlots, s.usedGroups = sn.time, sn.usedSlots, sn.usedGroups
	s.last = sn.last
	copy(s.eet, sn.eet)
	copy(s.unschedParents, sn.parents)
	for c, u := range sn.units {
		if u != nil {
			copy(s.unitBusy[c], u)
		}
	}
}
