// Package interp is an architectural interpreter for the ISA's
// straight-line subset. Its only job is to witness semantics: the test
// suites run a basic block and a scheduled permutation of it from the
// same initial state and require identical final state (registers,
// condition codes, memory). A scheduler or DAG builder that drops a
// dependence fails that property immediately.
//
// Floating-point registers hold 32-bit patterns exactly as on SPARC:
// single-precision operations use one register, double-precision
// operations combine an even/odd pair into one 64-bit value. Memory is
// word-addressed at (base register value + offset); the initial state
// places each potential base register in its own distant region, which
// matches the resource model's treatment of distinct bases as disjoint
// (see package resource).
package interp

import (
	"fmt"
	"math"

	"daginsched/internal/isa"
)

// State is the architectural state.
type State struct {
	R   [32]uint32 // integer registers; R[0] is hardwired zero
	F   [32]uint32 // FP registers (bit patterns)
	ICC CC
	FCC CC
	Y   uint32
	Mem map[uint32]uint32 // word-addressed memory
}

// CC is a condition-code value.
type CC struct {
	N, Z, V, C bool
}

// NewState returns a deterministic initial state seeded by seed. Base
// registers are placed in widely separated memory regions and every
// register gets a distinct value.
func NewState(seed uint64) *State {
	s := &State{Mem: make(map[uint32]uint32)}
	x := seed*2862933555777941757 + 3037000493
	next := func() uint32 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return uint32(x)
	}
	for i := 1; i < 32; i++ {
		// Region base: register index in the top bits keeps regions
		// disjoint; low bits small so offsets stay in-region.
		s.R[i] = uint32(i)<<20 | next()&0x3fc
	}
	for i := 0; i < 32; i++ {
		s.F[i] = math.Float32bits(float32(i+1) + float32(next()&0xff)/256)
	}
	s.Y = next()
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := *s
	c.Mem = make(map[uint32]uint32, len(s.Mem))
	for k, v := range s.Mem {
		c.Mem[k] = v
	}
	return &c
}

// Equal reports whether two states are architecturally identical.
// Memory entries holding zero are treated as absent.
func (s *State) Equal(o *State) bool {
	if s.R != o.R || s.F != o.F || s.ICC != o.ICC || s.FCC != o.FCC || s.Y != o.Y {
		return false
	}
	for k, v := range s.Mem {
		if v != 0 && o.Mem[k] != v {
			return false
		}
	}
	for k, v := range o.Mem {
		if v != 0 && s.Mem[k] != v {
			return false
		}
	}
	return true
}

// Diff describes the first difference between two states, for test
// failure messages.
func (s *State) Diff(o *State) string {
	for i := 0; i < 32; i++ {
		if s.R[i] != o.R[i] {
			return fmt.Sprintf("%v: %#x vs %#x", isa.Reg(i), s.R[i], o.R[i])
		}
	}
	for i := 0; i < 32; i++ {
		if s.F[i] != o.F[i] {
			return fmt.Sprintf("%v: %#x vs %#x", isa.F(i), s.F[i], o.F[i])
		}
	}
	if s.ICC != o.ICC {
		return fmt.Sprintf("%%icc: %+v vs %+v", s.ICC, o.ICC)
	}
	if s.FCC != o.FCC {
		return fmt.Sprintf("%%fcc: %+v vs %+v", s.FCC, o.FCC)
	}
	if s.Y != o.Y {
		return fmt.Sprintf("%%y: %#x vs %#x", s.Y, o.Y)
	}
	for k, v := range s.Mem {
		if o.Mem[k] != v {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", k, v, o.Mem[k])
		}
	}
	for k, v := range o.Mem {
		if s.Mem[k] != v {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", k, s.Mem[k], v)
		}
	}
	return "equal"
}

func (s *State) reg(r isa.Reg) uint32 {
	if r == isa.RegNone || r == isa.G0 {
		return 0
	}
	return s.R[r]
}

func (s *State) setReg(r isa.Reg, v uint32) {
	if r == isa.RegNone || r == isa.G0 {
		return
	}
	s.R[r] = v
}

func (s *State) addr(m isa.MemExpr) uint32 {
	a := uint32(int32(m.Offset))
	if m.Base != isa.RegNone {
		a += s.reg(m.Base)
	}
	if m.Index != isa.RegNone {
		a += s.reg(m.Index)
	}
	if m.Sym != "" {
		a += symBase(m.Sym)
	}
	return a &^ 3 // word-align
}

// symBase hashes a symbol into its own memory region, above all
// register regions.
func symBase(sym string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(sym); i++ {
		h = (h ^ uint32(sym[i])) * 16777619
	}
	return 1<<26 | h&^0xfc000003
}

func (s *State) fsingle(r isa.Reg) float32 {
	return math.Float32frombits(s.F[r.FPNum()])
}

func (s *State) setFsingle(r isa.Reg, v float32) {
	s.F[r.FPNum()] = math.Float32bits(v)
}

func (s *State) fdouble(r isa.Reg) float64 {
	n := r.FPNum() &^ 1
	bits := uint64(s.F[n])<<32 | uint64(s.F[n+1])
	return math.Float64frombits(bits)
}

func (s *State) setFdouble(r isa.Reg, v float64) {
	n := r.FPNum() &^ 1
	bits := math.Float64bits(v)
	s.F[n] = uint32(bits >> 32)
	s.F[n+1] = uint32(bits)
}

func (s *State) setICC(res uint32, v, c bool) {
	s.ICC = CC{N: int32(res) < 0, Z: res == 0, V: v, C: c}
}

// Exec executes one instruction. Control-transfer instructions and
// register-window instructions return an error: the interpreter is for
// straight-line block bodies.
func (s *State) Exec(in *isa.Inst) error {
	src2 := func() uint32 {
		if in.HasImm {
			return uint32(int32(in.Imm))
		}
		return s.reg(in.RS2)
	}
	switch in.Op {
	case isa.NOP:
	case isa.ADD, isa.MOV:
		s.setReg(in.RD, s.reg(in.RS1)+src2())
	case isa.ADDCC:
		a, b := s.reg(in.RS1), src2()
		r := a + b
		s.setReg(in.RD, r)
		s.setICC(r, (a>>31 == b>>31) && (r>>31 != a>>31), r < a)
	case isa.SUB:
		s.setReg(in.RD, s.reg(in.RS1)-src2())
	case isa.SUBCC, isa.CMP:
		a, b := s.reg(in.RS1), src2()
		r := a - b
		s.setReg(in.RD, r)
		s.setICC(r, (a>>31 != b>>31) && (r>>31 != a>>31), a < b)
	case isa.AND:
		s.setReg(in.RD, s.reg(in.RS1)&src2())
	case isa.ANDCC:
		r := s.reg(in.RS1) & src2()
		s.setReg(in.RD, r)
		s.setICC(r, false, false)
	case isa.OR:
		s.setReg(in.RD, s.reg(in.RS1)|src2())
	case isa.ORCC:
		r := s.reg(in.RS1) | src2()
		s.setReg(in.RD, r)
		s.setICC(r, false, false)
	case isa.XOR:
		s.setReg(in.RD, s.reg(in.RS1)^src2())
	case isa.XORCC:
		r := s.reg(in.RS1) ^ src2()
		s.setReg(in.RD, r)
		s.setICC(r, false, false)
	case isa.ANDN:
		s.setReg(in.RD, s.reg(in.RS1)&^src2())
	case isa.ORN:
		s.setReg(in.RD, s.reg(in.RS1)|^src2())
	case isa.XNOR:
		s.setReg(in.RD, ^(s.reg(in.RS1) ^ src2()))
	case isa.SLL:
		s.setReg(in.RD, s.reg(in.RS1)<<(src2()&31))
	case isa.SRL:
		s.setReg(in.RD, s.reg(in.RS1)>>(src2()&31))
	case isa.SRA:
		s.setReg(in.RD, uint32(int32(s.reg(in.RS1))>>(src2()&31)))
	case isa.SETHI:
		s.setReg(in.RD, uint32(in.Imm)<<10)
	case isa.SMUL:
		p := int64(int32(s.reg(in.RS1))) * int64(int32(src2()))
		s.setReg(in.RD, uint32(p))
		s.Y = uint32(uint64(p) >> 32)
	case isa.UMUL:
		p := uint64(s.reg(in.RS1)) * uint64(src2())
		s.setReg(in.RD, uint32(p))
		s.Y = uint32(p >> 32)
	case isa.SDIV:
		d := int32(src2())
		if d == 0 {
			d = 1 // no trap modeling; keep deterministic
		}
		s.setReg(in.RD, uint32(int32(s.reg(in.RS1))/d))
	case isa.UDIV:
		d := src2()
		if d == 0 {
			d = 1
		}
		s.setReg(in.RD, s.reg(in.RS1)/d)
	case isa.RDY:
		s.setReg(in.RD, s.Y)

	case isa.LD:
		s.setReg(in.RD, s.Mem[s.addr(in.Mem)])
	case isa.LDUB:
		s.setReg(in.RD, s.Mem[s.addr(in.Mem)]&0xff)
	case isa.LDSB:
		s.setReg(in.RD, uint32(int32(int8(s.Mem[s.addr(in.Mem)]))))
	case isa.LDUH:
		s.setReg(in.RD, s.Mem[s.addr(in.Mem)]&0xffff)
	case isa.LDSH:
		s.setReg(in.RD, uint32(int32(int16(s.Mem[s.addr(in.Mem)]))))
	case isa.LDD:
		a := s.addr(in.Mem)
		s.setReg(in.RD, s.Mem[a])
		s.setReg(in.RD+1, s.Mem[a+4])
	case isa.LDF:
		s.F[in.RD.FPNum()] = s.Mem[s.addr(in.Mem)]
	case isa.LDDF:
		a := s.addr(in.Mem)
		n := in.RD.FPNum() &^ 1
		s.F[n] = s.Mem[a]
		s.F[n+1] = s.Mem[a+4]
	case isa.ST:
		s.Mem[s.addr(in.Mem)] = s.reg(in.RD)
	case isa.STB:
		s.Mem[s.addr(in.Mem)] = s.reg(in.RD) & 0xff
	case isa.STH:
		s.Mem[s.addr(in.Mem)] = s.reg(in.RD) & 0xffff
	case isa.STD:
		a := s.addr(in.Mem)
		s.Mem[a] = s.reg(in.RD)
		s.Mem[a+4] = s.reg(in.RD + 1)
	case isa.STF:
		s.Mem[s.addr(in.Mem)] = s.F[in.RD.FPNum()]
	case isa.STDF:
		a := s.addr(in.Mem)
		n := in.RD.FPNum() &^ 1
		s.Mem[a] = s.F[n]
		s.Mem[a+4] = s.F[n+1]

	case isa.FADDS:
		s.setFsingle(in.RD, s.fsingle(in.RS1)+s.fsingle(in.RS2))
	case isa.FADDD:
		s.setFdouble(in.RD, s.fdouble(in.RS1)+s.fdouble(in.RS2))
	case isa.FSUBS:
		s.setFsingle(in.RD, s.fsingle(in.RS1)-s.fsingle(in.RS2))
	case isa.FSUBD:
		s.setFdouble(in.RD, s.fdouble(in.RS1)-s.fdouble(in.RS2))
	case isa.FMULS:
		s.setFsingle(in.RD, s.fsingle(in.RS1)*s.fsingle(in.RS2))
	case isa.FMULD:
		s.setFdouble(in.RD, s.fdouble(in.RS1)*s.fdouble(in.RS2))
	case isa.FDIVS:
		s.setFsingle(in.RD, fdiv32(s.fsingle(in.RS1), s.fsingle(in.RS2)))
	case isa.FDIVD:
		s.setFdouble(in.RD, fdiv64(s.fdouble(in.RS1), s.fdouble(in.RS2)))
	case isa.FSQRTS:
		s.setFsingle(in.RD, float32(math.Sqrt(math.Abs(float64(s.fsingle(in.RS2))))))
	case isa.FSQRTD:
		s.setFdouble(in.RD, math.Sqrt(math.Abs(s.fdouble(in.RS2))))
	case isa.FMOVS:
		s.F[in.RD.FPNum()] = s.F[in.RS2.FPNum()]
	case isa.FNEGS:
		s.F[in.RD.FPNum()] = s.F[in.RS2.FPNum()] ^ 0x80000000
	case isa.FABSS:
		s.F[in.RD.FPNum()] = s.F[in.RS2.FPNum()] &^ 0x80000000
	case isa.FITOS:
		s.setFsingle(in.RD, float32(int32(s.F[in.RS2.FPNum()])))
	case isa.FITOD:
		s.setFdouble(in.RD, float64(int32(s.F[in.RS2.FPNum()])))
	case isa.FSTOI:
		s.F[in.RD.FPNum()] = uint32(int32(s.fsingle(in.RS2)))
	case isa.FDTOI:
		s.F[in.RD.FPNum()] = uint32(int32(s.fdouble(in.RS2)))
	case isa.FSTOD:
		s.setFdouble(in.RD, float64(s.fsingle(in.RS2)))
	case isa.FDTOS:
		s.setFsingle(in.RD, float32(s.fdouble(in.RS2)))
	case isa.FCMPS:
		a, b := s.fsingle(in.RS1), s.fsingle(in.RS2)
		s.FCC = CC{N: a < b, Z: a == b, V: a != a || b != b}
	case isa.FCMPD:
		a, b := s.fdouble(in.RS1), s.fdouble(in.RS2)
		s.FCC = CC{N: a < b, Z: a == b, V: a != a || b != b}

	default:
		return fmt.Errorf("interp: cannot execute %v in straight-line code", in.Op)
	}
	return nil
}

func fdiv32(a, b float32) float32 {
	if b == 0 {
		b = 1
	}
	return a / b
}

func fdiv64(a, b float64) float64 {
	if b == 0 {
		b = 1
	}
	return a / b
}

// Run executes a straight-line instruction sequence.
func (s *State) Run(insts []isa.Inst) error {
	for i := range insts {
		if err := s.Exec(&insts[i]); err != nil {
			return err
		}
	}
	return nil
}

// RunOrder executes a block's instructions in a permuted order given by
// node indices.
func (s *State) RunOrder(insts []isa.Inst, order []int32) error {
	for _, i := range order {
		if err := s.Exec(&insts[i]); err != nil {
			return err
		}
	}
	return nil
}
