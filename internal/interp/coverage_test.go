package interp

import (
	"testing"

	"daginsched/internal/isa"
)

// canonical builds one executable instruction per opcode (registers
// chosen so pair operations stay aligned).
func canonical(op isa.Opcode) (isa.Inst, bool) {
	switch op.Format() {
	case isa.FmtNone:
		if op != isa.NOP {
			return isa.Inst{}, false // ret/retl are CTIs
		}
		return isa.Nop(), true
	case isa.Fmt3:
		if op.Class() == isa.ClassWindow {
			return isa.Inst{}, false
		}
		switch op {
		case isa.MOV:
			return isa.MovI(7, isa.O1), true
		case isa.CMP:
			return isa.CmpI(isa.O0, 3), true
		}
		return isa.RRR(op, isa.O0, isa.O1, isa.O2), true
	case isa.FmtLoad:
		rd := isa.Reg(isa.O0)
		if op == isa.LDF || op == isa.LDDF {
			rd = isa.F(2)
		}
		return isa.Load(op, isa.FP, -8, rd), true
	case isa.FmtStore:
		rd := isa.Reg(isa.O0)
		if op == isa.STF || op == isa.STDF {
			rd = isa.F(2)
		}
		return isa.Store(op, rd, isa.SP, 64), true
	case isa.FmtSethi:
		return isa.Sethi(4096, isa.G1), true
	case isa.FmtFp2:
		return isa.Fp2(op, isa.F(2), isa.F(4)), true
	case isa.FmtFp3:
		return isa.Fp3(op, isa.F(0), isa.F(2), isa.F(4)), true
	case isa.FmtFcmp:
		return isa.Fcmp(op, isa.F(0), isa.F(2)), true
	case isa.FmtRdY:
		return isa.Inst{Op: op, RS1: isa.RegNone, RS2: isa.RegNone,
			RD: isa.O3, Mem: isa.NoMem}, true
	}
	return isa.Inst{}, false // branches, calls, jmpl
}

// TestExecTouchesOnlyDeclaredDefs executes every straight-line opcode
// and verifies the state change is confined to the resources the
// instruction's def extraction declares — the cross-check that keeps
// the interpreter and the dependence analysis telling the same story.
func TestExecTouchesOnlyDeclaredDefs(t *testing.T) {
	for op := 0; op < isa.NumOpcodes; op++ {
		in, ok := canonical(isa.Opcode(op))
		if !ok {
			continue
		}
		before := NewState(42)
		after := before.Clone()
		if err := after.Exec(&in); err != nil {
			t.Fatalf("%v: %v", isa.Opcode(op), err)
		}
		defs := in.Defs()
		declared := func(kind isa.ResKind, reg isa.Reg) bool {
			for _, d := range defs {
				if d.Kind == kind && d.Reg == reg {
					return true
				}
			}
			return false
		}
		declaredMem := false
		for _, d := range defs {
			if d.Kind == isa.RMem {
				declaredMem = true
			}
		}
		for r := 0; r < 32; r++ {
			if before.R[r] != after.R[r] && !declared(isa.RReg, isa.Reg(r)) {
				t.Errorf("%v modified undeclared %v", isa.Opcode(op), isa.Reg(r))
			}
		}
		for r := 0; r < 32; r++ {
			if before.F[r] != after.F[r] && !declared(isa.RFReg, isa.F(r)) {
				t.Errorf("%v modified undeclared %v", isa.Opcode(op), isa.F(r))
			}
		}
		if before.ICC != after.ICC && !declared(isa.RCC, isa.ICC) {
			t.Errorf("%v modified undeclared %%icc", isa.Opcode(op))
		}
		if before.FCC != after.FCC && !declared(isa.RCC, isa.FCC) {
			t.Errorf("%v modified undeclared %%fcc", isa.Opcode(op))
		}
		if before.Y != after.Y && !declared(isa.RY, isa.Y) {
			t.Errorf("%v modified undeclared %%y", isa.Opcode(op))
		}
		memDiffs := 0
		for k, v := range after.Mem {
			if before.Mem[k] != v {
				memDiffs++
			}
		}
		if memDiffs > 0 && !declaredMem {
			t.Errorf("%v modified %d memory words without an RMem def",
				isa.Opcode(op), memDiffs)
		}
		if declaredMem {
			// A store touches at most its declared word count.
			words := 0
			for _, d := range defs {
				if d.Kind == isa.RMem {
					words++
				}
			}
			if memDiffs > words {
				t.Errorf("%v wrote %d words, declared %d", isa.Opcode(op), memDiffs, words)
			}
		}
	}
}

// TestExecDeterministic: executing the same instruction from the same
// state twice gives identical results.
func TestExecDeterministic(t *testing.T) {
	for op := 0; op < isa.NumOpcodes; op++ {
		in, ok := canonical(isa.Opcode(op))
		if !ok {
			continue
		}
		a := NewState(7)
		b := NewState(7)
		if err := a.Exec(&in); err != nil {
			t.Fatal(err)
		}
		if err := b.Exec(&in); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("%v: nondeterministic execution: %s", isa.Opcode(op), a.Diff(b))
		}
	}
}

// TestUsesActuallyMatter: for every opcode with register uses,
// perturbing a used register must be able to change the outcome
// (checked on a representative, value-sensitive subset).
func TestUsesActuallyMatter(t *testing.T) {
	cases := []isa.Inst{
		isa.RRR(isa.ADD, isa.O0, isa.O1, isa.O2),
		isa.RRR(isa.SUBCC, isa.O0, isa.O1, isa.O2),
		isa.Fp3(isa.FADDD, isa.F(0), isa.F(2), isa.F(4)),
		isa.Load(isa.LD, isa.FP, -8, isa.O0),
		isa.Store(isa.ST, isa.O0, isa.SP, 64),
	}
	for _, in := range cases {
		uses := in.Uses()
		if len(uses) == 0 {
			t.Fatalf("%v has no uses", in.Op)
		}
		base := NewState(11)
		want := base.Clone()
		if err := want.Exec(&in); err != nil {
			t.Fatal(err)
		}
		// Perturb the first register use; outcome must differ.
		perturbed := base.Clone()
		u := uses[0]
		switch u.Kind {
		case isa.RReg:
			perturbed.R[u.Reg] += 12345
		case isa.RFReg:
			perturbed.F[u.Reg.FPNum()] ^= 0x7f000000
		default:
			continue
		}
		if err := perturbed.Exec(&in); err != nil {
			t.Fatal(err)
		}
		if perturbed.Equal(want) {
			t.Errorf("%s: perturbing used %v changed nothing", in.String(), u)
		}
	}
}
