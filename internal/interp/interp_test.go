package interp

import (
	"strings"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
	"daginsched/internal/testgen"
)

func TestG0HardwiredZero(t *testing.T) {
	s := NewState(1)
	if err := s.Exec(&isa.Inst{Op: isa.ADD, RS1: isa.G1, RS2: isa.G2, RD: isa.G0, Mem: isa.NoMem}); err != nil {
		t.Fatal(err)
	}
	if s.R[0] != 0 {
		t.Fatal("write to g0 stuck")
	}
}

func TestIntegerALU(t *testing.T) {
	s := NewState(0)
	s.R[isa.O0] = 10
	s.R[isa.O1] = 3
	prog := []isa.Inst{
		isa.RRR(isa.ADD, isa.O0, isa.O1, isa.O2),  // 13
		isa.RRR(isa.SUB, isa.O0, isa.O1, isa.O3),  // 7
		isa.RIR(isa.SLL, isa.O0, 2, isa.O4),       // 40
		isa.RRR(isa.XOR, isa.O0, isa.O1, isa.O5),  // 9
		isa.RIR(isa.SRA, isa.O1, 1, isa.L0),       // 1
		isa.MovI(-5, isa.L1),                      // 0xfffffffb
		isa.RRR(isa.AND, isa.O0, isa.O1, isa.L2),  // 2
		isa.RRR(isa.ANDN, isa.O0, isa.O1, isa.L3), // 8
	}
	if err := s.Run(prog); err != nil {
		t.Fatal(err)
	}
	want := map[isa.Reg]uint32{
		isa.O2: 13, isa.O3: 7, isa.O4: 40, isa.O5: 9,
		isa.L0: 1, isa.L1: 0xfffffffb, isa.L2: 2, isa.L3: 8,
	}
	for r, v := range want {
		if s.R[r] != v {
			t.Errorf("%v = %#x, want %#x", r, s.R[r], v)
		}
	}
}

func TestCondCodes(t *testing.T) {
	s := NewState(0)
	s.R[isa.O0] = 5
	s.R[isa.O1] = 5
	if err := s.Exec(&isa.Inst{Op: isa.CMP, RS1: isa.O0, RS2: isa.O1, RD: isa.G0, Mem: isa.NoMem}); err != nil {
		t.Fatal(err)
	}
	if !s.ICC.Z || s.ICC.N {
		t.Errorf("cmp equal: ICC = %+v", s.ICC)
	}
	s.R[isa.O1] = 9
	_ = s.Exec(&isa.Inst{Op: isa.CMP, RS1: isa.O0, RS2: isa.O1, RD: isa.G0, Mem: isa.NoMem})
	if s.ICC.Z || !s.ICC.N || !s.ICC.C {
		t.Errorf("cmp less: ICC = %+v", s.ICC)
	}
}

func TestMulDivY(t *testing.T) {
	s := NewState(0)
	s.R[isa.O0] = 0x10000
	s.R[isa.O1] = 0x10000
	prog := []isa.Inst{
		isa.RRR(isa.UMUL, isa.O0, isa.O1, isa.O2),
		{Op: isa.RDY, RS1: isa.RegNone, RS2: isa.RegNone, RD: isa.O3, Mem: isa.NoMem},
	}
	if err := s.Run(prog); err != nil {
		t.Fatal(err)
	}
	if s.R[isa.O2] != 0 || s.R[isa.O3] != 1 {
		t.Errorf("umul: lo %#x y %#x", s.R[isa.O2], s.R[isa.O3])
	}
	// Division by zero is defined (no trap model): divisor forced to 1.
	s.R[isa.O4] = 0
	_ = s.Exec(&isa.Inst{Op: isa.UDIV, RS1: isa.O0, RS2: isa.O4, RD: isa.O5, Mem: isa.NoMem})
	if s.R[isa.O5] != s.R[isa.O0] {
		t.Error("udiv by zero should act as /1")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	s := NewState(3)
	s.R[isa.O0] = 0xdeadbeef
	prog := []isa.Inst{
		isa.Store(isa.ST, isa.O0, isa.FP, -8),
		isa.Load(isa.LD, isa.FP, -8, isa.O1),
		isa.Load(isa.LD, isa.FP, -12, isa.O2), // untouched slot reads 0
	}
	if err := s.Run(prog); err != nil {
		t.Fatal(err)
	}
	if s.R[isa.O1] != 0xdeadbeef {
		t.Errorf("round trip = %#x", s.R[isa.O1])
	}
	if s.R[isa.O2] != 0 {
		t.Errorf("cold memory = %#x", s.R[isa.O2])
	}
}

func TestDistinctBasesDistinctRegions(t *testing.T) {
	s := NewState(7)
	s.R[isa.O0] = 1
	prog := []isa.Inst{
		isa.Store(isa.ST, isa.O0, isa.FP, -4),
		isa.Load(isa.LD, isa.SP, -4, isa.O1),
	}
	if err := s.Run(prog); err != nil {
		t.Fatal(err)
	}
	if s.R[isa.O1] == 1 {
		t.Error("stack regions of fp and sp must not overlap")
	}
}

func TestSymbolAddressing(t *testing.T) {
	s := NewState(4)
	s.R[isa.O0] = 99
	prog := []isa.Inst{
		isa.StoreSym(isa.ST, isa.O0, "_counter", isa.G0, 0),
		isa.LoadSym(isa.LD, "_counter", isa.G0, 0, isa.O1),
		isa.LoadSym(isa.LD, "_other", isa.G0, 0, isa.O2),
	}
	if err := s.Run(prog); err != nil {
		t.Fatal(err)
	}
	if s.R[isa.O1] != 99 {
		t.Errorf("symbol round trip = %d", s.R[isa.O1])
	}
	if s.R[isa.O2] == 99 {
		t.Error("distinct symbols must not alias")
	}
}

func TestDoublePrecisionPairs(t *testing.T) {
	s := NewState(5)
	s.setFdouble(isa.F(0), 1.5)
	s.setFdouble(isa.F(2), 2.25)
	prog := []isa.Inst{
		isa.Fp3(isa.FADDD, isa.F(0), isa.F(2), isa.F(4)),
		isa.Store(isa.STDF, isa.F(4), isa.FP, -16),
		isa.Load(isa.LDDF, isa.FP, -16, isa.F(6)),
	}
	if err := s.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := s.fdouble(isa.F(4)); got != 3.75 {
		t.Errorf("faddd = %v", got)
	}
	if got := s.fdouble(isa.F(6)); got != 3.75 {
		t.Errorf("pair store/load = %v", got)
	}
	// The odd half must carry the low word: clobber it and observe.
	// (3.75 has a zero low word, so flip bits rather than zeroing.)
	s.F[7] ^= 0xdeadbeef
	if s.fdouble(isa.F(6)) == 3.75 {
		t.Error("odd half ignored by double read")
	}
}

func TestFPCompare(t *testing.T) {
	s := NewState(6)
	s.setFsingle(isa.F(1), 1)
	s.setFsingle(isa.F(2), 2)
	_ = s.Exec(&isa.Inst{Op: isa.FCMPS, RS1: isa.F(1), RS2: isa.F(2), RD: isa.RegNone, Mem: isa.NoMem})
	if !s.FCC.N || s.FCC.Z {
		t.Errorf("fcmps 1<2: FCC = %+v", s.FCC)
	}
}

func TestCTIRejected(t *testing.T) {
	s := NewState(8)
	br := isa.Branch(isa.BNE, "L")
	if err := s.Exec(&br); err == nil {
		t.Fatal("branch should be rejected in straight-line execution")
	}
	sv := isa.SaveI(-96)
	if err := s.Exec(&sv); err == nil {
		t.Fatal("save should be rejected")
	}
}

func TestDiffNamesTheDivergence(t *testing.T) {
	a := NewState(1)
	b := a.Clone()
	if a.Diff(b) != "equal" {
		t.Fatalf("Diff of equal states = %q", a.Diff(b))
	}
	b.R[5] = a.R[5] + 1
	if d := a.Diff(b); !strings.Contains(d, "%g5") {
		t.Errorf("int reg diff = %q", d)
	}
	b = a.Clone()
	b.F[3] ^= 1
	if d := a.Diff(b); !strings.Contains(d, "%f3") {
		t.Errorf("fp reg diff = %q", d)
	}
	b = a.Clone()
	b.ICC.Z = !b.ICC.Z
	if d := a.Diff(b); !strings.Contains(d, "icc") {
		t.Errorf("icc diff = %q", d)
	}
	b = a.Clone()
	b.Y++
	if d := a.Diff(b); !strings.Contains(d, "%y") {
		t.Errorf("y diff = %q", d)
	}
	b = a.Clone()
	b.Mem[0x4000] = 7
	if d := a.Diff(b); !strings.Contains(d, "mem[0x4000]") {
		t.Errorf("mem diff = %q", d)
	}
}

func TestFPDivideByZeroDefined(t *testing.T) {
	s := NewState(2)
	s.setFsingle(isa.F(1), 3)
	s.setFsingle(isa.F(2), 0)
	if err := s.Exec(&isa.Inst{Op: isa.FDIVS, RS1: isa.F(1), RS2: isa.F(2),
		RD: isa.F(3), Mem: isa.NoMem}); err != nil {
		t.Fatal(err)
	}
	if got := s.fsingle(isa.F(3)); got != 3 {
		t.Errorf("fdivs by zero = %v, want /1 semantics", got)
	}
	s.setFdouble(isa.F(4), 5)
	s.setFdouble(isa.F(6), 0)
	if err := s.Exec(&isa.Inst{Op: isa.FDIVD, RS1: isa.F(4), RS2: isa.F(6),
		RD: isa.F(8), Mem: isa.NoMem}); err != nil {
		t.Fatal(err)
	}
	if got := s.fdouble(isa.F(8)); got != 5 {
		t.Errorf("fdivd by zero = %v", got)
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := NewState(9)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone differs: " + s.Diff(c))
	}
	c.R[5]++
	if s.Equal(c) {
		t.Fatal("mutated clone compares equal")
	}
	c.R[5]--
	c.Mem[0x123450] = 7
	if s.Equal(c) {
		t.Fatal("memory write unnoticed")
	}
	s.Mem[0x123450] = 7
	s.Mem[0x999990] = 0 // zero entries are immaterial
	if !s.Equal(c) {
		t.Fatal("zero memory entry broke equality: " + s.Diff(c))
	}
}

// TestSchedulingPreservesSemantics is the system-wide soundness
// property: every (builder × algorithm) combination must produce a
// schedule that leaves the architectural state bit-identical to program
// order.
func TestSchedulingPreservesSemantics(t *testing.T) {
	models := []*machine.Model{machine.Pipe1(), machine.FPU(), machine.Asym(), machine.Super2()}
	for seed := int64(0); seed < 12; seed++ {
		insts := testgen.Block(seed, 24)
		ref := NewState(uint64(seed))
		if err := ref.Run(insts); err != nil {
			t.Fatal(err)
		}
		for _, m := range models {
			for _, al := range sched.Table2() {
				for _, bld := range dag.AllBuilders() {
					b := &block.Block{Name: "t", Insts: insts}
					rt := resource.NewTable(resource.MemExprModel)
					rt.PrepareBlock(b.Insts)
					d := bld.Build(b, m, rt)
					r := al.Run(d, m)
					got := NewState(uint64(seed))
					if err := got.RunOrder(insts, r.Order); err != nil {
						t.Fatal(err)
					}
					if !got.Equal(ref) {
						t.Fatalf("seed %d, %s × %s on %s: state diverged: %s\norder %v",
							seed, bld.Name(), al.Name, m.Name, got.Diff(ref), r.Order)
					}
				}
			}
		}
	}
}

// TestBranchAndBoundPreservesSemantics covers the optimal scheduler.
func TestBranchAndBoundPreservesSemantics(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(20); seed < 30; seed++ {
		insts := testgen.Block(seed, 10)
		ref := NewState(uint64(seed))
		if err := ref.Run(insts); err != nil {
			t.Fatal(err)
		}
		b := &block.Block{Name: "t", Insts: insts}
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(b.Insts)
		d := dag.TableForward{}.Build(b, m, rt)
		r := sched.BranchAndBound(d, m)
		got := NewState(uint64(seed))
		if err := got.RunOrder(insts, r.Order); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Fatalf("seed %d: optimal schedule diverged: %s", seed, got.Diff(ref))
		}
	}
}

// TestMemSingleModelAlsoSound: the conservative memory model must also
// produce semantics-preserving schedules (it only adds arcs).
func TestMemSingleModelAlsoSound(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(40); seed < 50; seed++ {
		insts := testgen.Block(seed, 20)
		ref := NewState(uint64(seed))
		if err := ref.Run(insts); err != nil {
			t.Fatal(err)
		}
		for _, model := range []resource.MemModel{resource.MemSingleModel, resource.MemClassModel} {
			b := &block.Block{Name: "t", Insts: insts}
			rt := resource.NewTable(model)
			rt.PrepareBlock(b.Insts)
			d := dag.TableBackward{}.Build(b, m, rt)
			r := sched.Warren().Run(d, m)
			got := NewState(uint64(seed))
			if err := got.RunOrder(insts, r.Order); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref) {
				t.Fatalf("seed %d model %v: diverged: %s", seed, model, got.Diff(ref))
			}
		}
	}
}
