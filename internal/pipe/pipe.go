// Package pipe is an in-order pipeline simulator that times an
// instruction sequence directly from a register/memory scoreboard —
// deliberately *without* consulting a dependence DAG. It exists as an
// independent witness: sched.Timed derives timing from DAG arcs, pipe
// derives it from raw def/use information, and the test suites require
// the two to agree cycle-for-cycle on table-built DAGs. A bug in arc
// delays, in the table-building algorithms' last-def/use bookkeeping,
// or in the scheduler's clock shows up as a disagreement.
package pipe

import (
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// Result is the timing of one simulated sequence.
type Result struct {
	// Issue is the issue cycle per position in the simulated order.
	Issue []int32
	// Cycles is the completion time (max issue + latency).
	Cycles int32
}

// defRecord remembers the in-flight definition of one resource.
type defRecord struct {
	inst       *isa.Inst
	issue      int32
	pairSecond bool
	valid      bool
}

// Simulate times insts[order[0]], insts[order[1]], … on machine m.
// A nil order means program order. The resource table rt must have
// PrepareBlock(insts) applied; it supplies the memory-disambiguation
// policy (use the same table the DAG builder saw to compare against
// sched.Timed).
func Simulate(insts []isa.Inst, order []int32, m *machine.Model, rt *resource.Table) *Result {
	if order == nil {
		order = make([]int32, len(insts))
		for i := range order {
			order[i] = int32(i)
		}
	}
	res := &Result{Issue: make([]int32, len(order))}

	defs := map[resource.ID]defRecord{}
	lastRead := map[resource.ID]int32{}
	var unitBusy [isa.NumClasses][]int32
	for c := 0; c < isa.NumClasses; c++ {
		if k := m.Units[c]; k > 0 {
			unitBusy[c] = make([]int32, k)
		}
	}

	var clock, usedSlots, usedGroups int32
	var ubuf, dbuf []isa.ResRef
	for pos, idx := range order {
		in := &insts[idx]
		class := in.Class()
		at := int32(0)

		ubuf = in.AppendUses(ubuf[:0])
		for _, u := range ubuf {
			id := rt.RefID(u)
			if d, ok := defs[id]; ok && d.valid {
				if t := d.issue + int32(m.RAWDelay(d.inst, d.pairSecond, in, u.Slot)); t > at {
					at = t
				}
			}
		}
		dbuf = in.AppendDefs(dbuf[:0])
		for _, d := range dbuf {
			id := rt.RefID(d)
			if r, ok := lastRead[id]; ok {
				if t := r + int32(m.WARDelayFor(nil, in)); t > at {
					at = t
				}
			}
			if prev, ok := defs[id]; ok && prev.valid {
				if t := prev.issue + int32(m.WAWDelay(prev.inst, in)); t > at {
					at = t
				}
			}
		}
		// Structural hazard: wait for a free function unit.
		if free, _ := unitFree(unitBusy[class]); free > at {
			at = free
		}
		// In-order issue: never before the current cycle; one slot per
		// group on a superscalar.
		if at < clock {
			at = clock
		}
		group := int32(machine.IssueGroup(class))
		for {
			if at > clock {
				clock, usedSlots, usedGroups = at, 0, 0
			}
			if usedSlots < int32(m.IssueWidth) &&
				(m.IssueWidth == 1 || usedGroups&(1<<group) == 0) {
				break
			}
			at = clock + 1
		}
		usedSlots++
		usedGroups |= 1 << group
		res.Issue[pos] = at
		if fin := at + int32(m.Latency(in.Op)); fin > res.Cycles {
			res.Cycles = fin
		}
		// Scoreboard updates.
		for _, u := range ubuf {
			id := rt.RefID(u)
			if r, ok := lastRead[id]; !ok || at > r {
				lastRead[id] = at
			}
		}
		for _, d := range dbuf {
			id := rt.RefID(d)
			defs[id] = defRecord{inst: in, issue: at, pairSecond: in.PairSecondDef(d), valid: true}
			delete(lastRead, id)
		}
		if units := unitBusy[class]; len(units) > 0 {
			_, ui := unitFree(units)
			units[ui] = at + int32(m.UnitBusy(in.Op))
		}
	}
	return res
}

func unitFree(units []int32) (int32, int) {
	if len(units) == 0 {
		return 0, -1
	}
	best, bi := units[0], 0
	for i, t := range units[1:] {
		if t < best {
			best, bi = t, i+1
		}
	}
	return best, bi
}
