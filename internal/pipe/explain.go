package pipe

import (
	"fmt"
	"strings"

	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// StallCause classifies why an instruction issued later than the issue
// width alone would allow.
type StallCause uint8

const (
	// NoStall: the instruction issued as early as the front end allows.
	NoStall StallCause = iota
	// StallRAW: waiting for a true dependence (an operand in flight).
	StallRAW
	// StallWAR: waiting to overwrite a value still being read.
	StallWAR
	// StallWAW: waiting to keep writes to one resource in order.
	StallWAW
	// StallUnit: waiting for a busy (non-pipelined) function unit.
	StallUnit

	numCauses = int(StallUnit) + 1
)

// String names the cause.
func (c StallCause) String() string {
	switch c {
	case NoStall:
		return "none"
	case StallRAW:
		return "RAW"
	case StallWAR:
		return "WAR"
	case StallWAW:
		return "WAW"
	case StallUnit:
		return "unit"
	}
	return "cause?"
}

// InstStall is the per-instruction attribution.
type InstStall struct {
	// Wait is how many cycles the instruction lost to its binding
	// constraint (0 when it issued as early as issue bandwidth allows).
	Wait int32
	// Cause is the binding constraint.
	Cause StallCause
	// Culprit is the position (in the simulated order) of the
	// instruction that imposed the binding constraint, or -1.
	Culprit int32
}

// Detail is a fully-attributed simulation.
type Detail struct {
	Result
	Stalls  []InstStall      // per position in the simulated order
	ByCause [numCauses]int32 // total stall cycles per cause
}

// Explain simulates like Simulate but records, for every instruction,
// which constraint bound its issue cycle and who imposed it. The
// timing is identical to Simulate's.
func Explain(insts []isa.Inst, order []int32, m *machine.Model, rt *resource.Table) *Detail {
	if order == nil {
		order = make([]int32, len(insts))
		for i := range order {
			order[i] = int32(i)
		}
	}
	det := &Detail{
		Result: Result{Issue: make([]int32, len(order))},
		Stalls: make([]InstStall, len(order)),
	}

	type defRec struct {
		inst       *isa.Inst
		issue      int32
		pos        int32
		pairSecond bool
	}
	defs := map[resource.ID]defRec{}
	type readRec struct {
		issue int32
		pos   int32
	}
	lastRead := map[resource.ID]readRec{}
	var unitBusy [isa.NumClasses][]int32
	var unitLast [isa.NumClasses][]int32 // position that busied each unit
	for c := 0; c < isa.NumClasses; c++ {
		if k := m.Units[c]; k > 0 {
			unitBusy[c] = make([]int32, k)
			unitLast[c] = make([]int32, k)
			for i := range unitLast[c] {
				unitLast[c][i] = -1
			}
		}
	}

	var clock, usedSlots, usedGroups int32
	var ubuf, dbuf []isa.ResRef
	for pos, idx := range order {
		in := &insts[idx]
		class := in.Class()
		at := int32(0)
		bind := InstStall{Culprit: -1}
		consider := func(t int32, cause StallCause, culprit int32) {
			if t > at {
				at = t
				bind.Cause = cause
				bind.Culprit = culprit
			}
		}
		ubuf = in.AppendUses(ubuf[:0])
		for _, u := range ubuf {
			id := rt.RefID(u)
			if d, ok := defs[id]; ok {
				consider(d.issue+int32(m.RAWDelay(d.inst, d.pairSecond, in, u.Slot)),
					StallRAW, d.pos)
			}
		}
		dbuf = in.AppendDefs(dbuf[:0])
		for _, d := range dbuf {
			id := rt.RefID(d)
			if r, ok := lastRead[id]; ok {
				consider(r.issue+int32(m.WARDelayFor(nil, in)), StallWAR, r.pos)
			}
			if prev, ok := defs[id]; ok {
				consider(prev.issue+int32(m.WAWDelay(prev.inst, in)), StallWAW, prev.pos)
			}
		}
		var unitIdx int
		if free, ui := unitFree(unitBusy[class]); ui >= 0 {
			unitIdx = ui
			consider(free, StallUnit, unitLast[class][ui])
		}
		// Width floor: how early pure issue bandwidth would allow.
		floor := clock
		if usedSlots >= int32(m.IssueWidth) ||
			(m.IssueWidth > 1 && usedGroups&(1<<machine.IssueGroup(class)) != 0) {
			floor = clock + 1
		}
		if at > floor {
			bind.Wait = at - floor
		} else {
			bind.Cause, bind.Culprit = NoStall, -1
		}
		if at < floor {
			at = floor
		}
		group := int32(machine.IssueGroup(class))
		for {
			if at > clock {
				clock, usedSlots, usedGroups = at, 0, 0
			}
			if usedSlots < int32(m.IssueWidth) &&
				(m.IssueWidth == 1 || usedGroups&(1<<group) == 0) {
				break
			}
			at = clock + 1
		}
		usedSlots++
		usedGroups |= 1 << group
		det.Issue[pos] = at
		det.Stalls[pos] = bind
		det.ByCause[bind.Cause] += bind.Wait
		if fin := at + int32(m.Latency(in.Op)); fin > det.Cycles {
			det.Cycles = fin
		}
		for _, u := range ubuf {
			id := rt.RefID(u)
			if r, ok := lastRead[id]; !ok || at > r.issue {
				lastRead[id] = readRec{issue: at, pos: int32(pos)}
			}
		}
		for _, d := range dbuf {
			id := rt.RefID(d)
			defs[id] = defRec{inst: in, issue: at, pos: int32(pos),
				pairSecond: in.PairSecondDef(d)}
			delete(lastRead, id)
		}
		if units := unitBusy[class]; len(units) > 0 {
			units[unitIdx] = at + int32(m.UnitBusy(in.Op))
			unitLast[class][unitIdx] = int32(pos)
		}
	}
	return det
}

// Report renders the attribution: a per-cause summary and the stalled
// instructions with their culprits.
func (d *Detail) Report(insts []isa.Inst, order []int32) string {
	if order == nil {
		order = make([]int32, len(insts))
		for i := range order {
			order[i] = int32(i)
		}
	}
	var b strings.Builder
	var total int32
	for c := 1; c < numCauses; c++ {
		total += d.ByCause[c]
	}
	fmt.Fprintf(&b, "%d cycles, %d lost to stalls (RAW %d, WAR %d, WAW %d, unit %d)\n",
		d.Cycles, total, d.ByCause[StallRAW], d.ByCause[StallWAR],
		d.ByCause[StallWAW], d.ByCause[StallUnit])
	for pos, st := range d.Stalls {
		if st.Wait == 0 {
			continue
		}
		culprit := "?"
		if st.Culprit >= 0 {
			culprit = insts[order[st.Culprit]].String()
		}
		fmt.Fprintf(&b, "  @%-3d %-28s waits %2d (%s on: %s)\n",
			d.Issue[pos], insts[order[pos]].String(), st.Wait, st.Cause, culprit)
	}
	return b.String()
}
