package pipe

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
	"daginsched/internal/testgen"
)

func table(insts []isa.Inst) *resource.Table {
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(insts)
	return rt
}

func TestLoadUseStall(t *testing.T) {
	insts := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
	}
	r := Simulate(insts, nil, machine.Pipe1(), table(insts))
	if r.Issue[0] != 0 || r.Issue[1] != 2 {
		t.Errorf("issue = %v, want [0 2] (one delay slot)", r.Issue)
	}
}

func TestWARAllowsQuickReuse(t *testing.T) {
	insts := []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)), // reads f1 at 0
		isa.Fp3(isa.FADDS, isa.F(4), isa.F(5), isa.F(1)), // WAR: may issue at 1
	}
	r := Simulate(insts, nil, machine.Pipe1(), table(insts))
	if r.Issue[1] != 1 {
		t.Errorf("WAR delay: issue = %v, want second at 1", r.Issue)
	}
}

func TestWAWOrdering(t *testing.T) {
	insts := []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(4)), // 20 cycles into f4
		isa.Fp2(isa.FMOVS, isa.F(6), isa.F(4)),           // 3-cycle write to f4
	}
	r := Simulate(insts, nil, machine.Pipe1(), table(insts))
	// WAW delay 20-3+1 = 18: the short op may not complete first.
	if r.Issue[1] != 18 {
		t.Errorf("WAW: issue = %v, want [0 18]", r.Issue)
	}
}

func TestFPUnitSerializes(t *testing.T) {
	insts := []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)),
		isa.Fp3(isa.FDIVS, isa.F(4), isa.F(5), isa.F(6)),
	}
	r := Simulate(insts, nil, machine.FPU(), table(insts))
	if r.Issue[1] != 20 {
		t.Errorf("non-pipelined divider: issue = %v", r.Issue)
	}
}

func TestProgramOrderDefault(t *testing.T) {
	insts := []isa.Inst{isa.MovI(1, isa.O0), isa.MovI(2, isa.O1)}
	a := Simulate(insts, nil, machine.Pipe1(), table(insts))
	b := Simulate(insts, []int32{0, 1}, machine.Pipe1(), table(insts))
	if a.Cycles != b.Cycles || a.Issue[0] != b.Issue[0] {
		t.Error("nil order should equal explicit program order")
	}
}

// TestAgreesWithDAGTiming is the cross-check this package exists for:
// on table-built DAGs, the arc-based clock (sched.Timed) and the
// scoreboard-based clock must agree exactly, for every machine model,
// on both program order and algorithm-produced permutations.
func TestAgreesWithDAGTiming(t *testing.T) {
	models := []*machine.Model{machine.Pipe1(), machine.FPU(), machine.Asym(), machine.Super2()}
	for seed := int64(0); seed < 25; seed++ {
		insts := testgen.Block(seed, 30)
		for _, m := range models {
			b := &block.Block{Name: "t", Insts: insts}
			rt := resource.NewTable(resource.MemExprModel)
			rt.PrepareBlock(b.Insts)
			d := dag.TableForward{}.Build(b, m, rt)

			orders := [][]int32{nil}
			for _, al := range []*sched.Algorithm{sched.Krishnamurthy(), sched.Warren(), sched.Tiemann()} {
				orders = append(orders, al.Run(d, m).Order)
			}
			for oi, order := range orders {
				ps := Simulate(insts, order, m, rt)
				var ds *sched.Result
				if order == nil {
					ds = sched.InOrder(d, m)
				} else {
					ds = sched.Timed(d, m, order)
				}
				if ps.Cycles != ds.Cycles {
					t.Fatalf("seed %d model %s order#%d: pipe %d cycles, dag %d",
						seed, m.Name, oi, ps.Cycles, ds.Cycles)
				}
				for p, node := range orderOrProgram(order, len(insts)) {
					if ps.Issue[p] != ds.Issue[node] {
						t.Fatalf("seed %d model %s order#%d pos %d: pipe issue %d, dag %d",
							seed, m.Name, oi, p, ps.Issue[p], ds.Issue[node])
					}
				}
			}
		}
	}
}

func orderOrProgram(order []int32, n int) []int32 {
	if order != nil {
		return order
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func TestSuperscalarGrouping(t *testing.T) {
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.Fp3(isa.FADDS, isa.F(1), isa.F(2), isa.F(3)),
		isa.MovI(2, isa.O1),
	}
	r := Simulate(insts, nil, machine.Super2(), table(insts))
	if r.Issue[0] != 0 || r.Issue[1] != 0 || r.Issue[2] != 1 {
		t.Errorf("dual issue = %v, want [0 0 1]", r.Issue)
	}
}

func TestPairSkewVisible(t *testing.T) {
	insts := []isa.Inst{
		isa.Load(isa.LDDF, isa.SP, 64, isa.F(2)),
		isa.Fp2(isa.FMOVS, isa.F(3), isa.F(8)), // odd half: +1 cycle
	}
	r := Simulate(insts, nil, machine.Pipe1(), table(insts))
	if r.Issue[1] != 3 {
		t.Errorf("odd-half consumer issue = %d, want 3", r.Issue[1])
	}
	even := []isa.Inst{
		isa.Load(isa.LDDF, isa.SP, 64, isa.F(2)),
		isa.Fp2(isa.FMOVS, isa.F(2), isa.F(8)),
	}
	re := Simulate(even, nil, machine.Pipe1(), table(even))
	if re.Issue[1] != 2 {
		t.Errorf("even-half consumer issue = %d, want 2", re.Issue[1])
	}
}
