package pipe

import (
	"strings"
	"testing"

	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/testgen"
)

func TestExplainMatchesSimulate(t *testing.T) {
	models := []*machine.Model{machine.Pipe1(), machine.FPU(), machine.Super2()}
	for seed := int64(0); seed < 20; seed++ {
		insts := testgen.Block(seed, 25)
		for _, m := range models {
			rt := table(insts)
			sim := Simulate(insts, nil, m, rt)
			det := Explain(insts, nil, m, table(insts))
			if sim.Cycles != det.Cycles {
				t.Fatalf("seed %d %s: explain %d cycles, simulate %d",
					seed, m.Name, det.Cycles, sim.Cycles)
			}
			for i := range sim.Issue {
				if sim.Issue[i] != det.Issue[i] {
					t.Fatalf("seed %d %s: issue mismatch at %d", seed, m.Name, i)
				}
			}
		}
	}
}

func TestExplainAttributesRAW(t *testing.T) {
	insts := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
	}
	det := Explain(insts, nil, machine.Pipe1(), table(insts))
	st := det.Stalls[1]
	if st.Cause != StallRAW || st.Wait != 1 || st.Culprit != 0 {
		t.Fatalf("stall = %+v, want RAW wait 1 on position 0", st)
	}
	if det.ByCause[StallRAW] != 1 {
		t.Fatalf("ByCause[RAW] = %d", det.ByCause[StallRAW])
	}
}

func TestExplainAttributesUnit(t *testing.T) {
	insts := []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)),
		isa.Fp3(isa.FDIVS, isa.F(4), isa.F(5), isa.F(6)),
	}
	det := Explain(insts, nil, machine.FPU(), table(insts))
	st := det.Stalls[1]
	if st.Cause != StallUnit || st.Culprit != 0 {
		t.Fatalf("stall = %+v, want unit stall on position 0", st)
	}
	if st.Wait != 19 { // could issue at 1 by width; unit free at 20
		t.Fatalf("wait = %d, want 19", st.Wait)
	}
}

func TestExplainAttributesWAW(t *testing.T) {
	insts := []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(4)),
		isa.Fp2(isa.FMOVS, isa.F(6), isa.F(4)),
	}
	det := Explain(insts, nil, machine.Pipe1(), table(insts))
	if det.Stalls[1].Cause != StallWAW {
		t.Fatalf("stall = %+v, want WAW", det.Stalls[1])
	}
}

func TestExplainAttributesWAR(t *testing.T) {
	m := machine.Pipe1().SetLatency(isa.NOP, 1)
	m.WARDelay = 3 // exaggerate so WAR binds
	insts := []isa.Inst{
		isa.RRR(isa.ADD, isa.O1, isa.O2, isa.O0), // reads o1
		isa.MovI(5, isa.O1),                      // overwrites o1: WAR
	}
	det := Explain(insts, nil, m, table(insts))
	if det.Stalls[1].Cause != StallWAR || det.Stalls[1].Wait != 2 {
		t.Fatalf("stall = %+v, want WAR wait 2", det.Stalls[1])
	}
}

func TestExplainNoStallsOnIndependentCode(t *testing.T) {
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.MovI(2, isa.O1),
		isa.MovI(3, isa.O2),
	}
	det := Explain(insts, nil, machine.Pipe1(), table(insts))
	for i, st := range det.Stalls {
		if st.Cause != NoStall || st.Wait != 0 {
			t.Fatalf("position %d: %+v", i, st)
		}
	}
}

func TestExplainReport(t *testing.T) {
	insts := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
	}
	det := Explain(insts, nil, machine.Pipe1(), table(insts))
	rep := det.Report(insts, nil)
	for _, want := range []string{"RAW 1", "waits  1", "ld [%fp-4], %o0"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCauseString(t *testing.T) {
	want := map[StallCause]string{
		NoStall: "none", StallRAW: "RAW", StallWAR: "WAR",
		StallWAW: "WAW", StallUnit: "unit",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}
