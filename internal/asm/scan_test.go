package asm

import (
	"context"
	"strings"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/testgen"
)

// scanAll drains a BlockScanner into freshly copied blocks.
func scanAll(t *testing.T, src string) []*block.Block {
	t.Helper()
	sc := NewBlockScanner(strings.NewReader(src))
	var got []*block.Block
	var b block.Block
	for {
		ok, err := sc.Next(&b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return got
		}
		cp := &block.Block{Name: b.Name, Start: b.Start}
		cp.Insts = append(cp.Insts, b.Insts...)
		got = append(got, cp)
	}
}

// requireSameBlocks compares a scanned sequence against the batch
// Parse+Partition pipeline's output on the same source.
func requireSameBlocks(t *testing.T, src string, got []*block.Block) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := block.Partition(prog)
	if len(got) != len(want) {
		t.Fatalf("scanner found %d blocks, Partition found %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Name != w.Name {
			t.Fatalf("block %d: name %q, want %q", i, g.Name, w.Name)
		}
		if g.Start != w.Start {
			t.Fatalf("block %d (%s): start %d, want %d", i, g.Name, g.Start, w.Start)
		}
		if len(g.Insts) != len(w.Insts) {
			t.Fatalf("block %d (%s): %d insts, want %d", i, g.Name, len(g.Insts), len(w.Insts))
		}
		for j := range g.Insts {
			if g.Insts[j] != w.Insts[j] {
				t.Fatalf("block %d (%s) inst %d: %v, want %v", i, g.Name, j, g.Insts[j], w.Insts[j])
			}
		}
	}
}

// trickySource exercises every line shape the scanner must carry
// across block boundaries: shared-line labels, stacked labels on their
// own lines, labels separated from their instruction by comments and
// directives, block-ending opcodes, and an unlabeled leading block.
const trickySource = `
	.file "tricky.s"
	add %o0, %o1, %o2      ! unlabeled leading block
	ba .L1
	.align 8
.L1:	sub %l0, 16, %l1       ! shared-line label
	cmp %l1, 0
	bne .L2
.L2:
.L3:                           ! stacked labels: .L2 is empty in name only
	! comment between label and instruction
	.word 42
	ld [%fp-8], %o0
	st %o0, [_tab+12]
	retl
	mov 7, %o1
.L4:	ret
	call _printf
	fadds %f0, %f1, %f2
`

func TestScannerMatchesPartition(t *testing.T) {
	requireSameBlocks(t, trickySource, scanAll(t, trickySource))
}

// TestScannerMatchesPartitionOnPrintedProgram runs the equivalence on
// a large machine-printed program (Print/Parse roundtripping is proven
// separately by the fuzz test, so Print output is a faithful corpus).
func TestScannerMatchesPartitionOnPrintedProgram(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		sb.WriteString(Print(testgen.Block(int64(7000+i), 1+i*7%230)))
	}
	src := sb.String()
	requireSameBlocks(t, src, scanAll(t, src))
}

// TestScannerStickyError: a malformed line fails with its line number,
// and every subsequent Next repeats the same error.
func TestScannerStickyError(t *testing.T) {
	src := "\tadd %o0, %o1, %o2\n\tbogus %q9\n\tsub %o0, 1, %o1\n"
	sc := NewBlockScanner(strings.NewReader(src))
	var b block.Block
	_, err := sc.Next(&b)
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("error on line %d, want 2", pe.Line)
	}
	_, err2 := sc.Next(&b)
	if err2 != err {
		t.Fatalf("error not sticky: %v then %v", err, err2)
	}
}

// TestStreamBlocksMatchesPartition: the channel-producer wrapper emits
// the same sequence as the scanner, recycles freelist storage, and
// reports correct tallies.
func TestStreamBlocksMatchesPartition(t *testing.T) {
	src := make(chan *block.Block, 2)
	free := make(chan *block.Block, 2)
	free <- &block.Block{}
	var blocks, insts int64
	var serr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		blocks, insts, serr = StreamBlocks(context.Background(), strings.NewReader(trickySource), src, free)
	}()
	var got []*block.Block
	var n int64
	for b := range src {
		cp := &block.Block{Name: b.Name, Start: b.Start}
		cp.Insts = append(cp.Insts, b.Insts...)
		got = append(got, cp)
		n += int64(b.Len())
		select {
		case free <- b:
		default:
		}
	}
	<-done
	if serr != nil {
		t.Fatal(serr)
	}
	requireSameBlocks(t, trickySource, got)
	if blocks != int64(len(got)) || insts != n {
		t.Fatalf("tallies %d blocks / %d insts, saw %d / %d", blocks, insts, len(got), n)
	}
}

// TestStreamBlocksCancellation: a cancelled context stops the stream
// with the context error.
func TestStreamBlocksCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := make(chan *block.Block) // unbuffered: first send must block
	_, _, err := StreamBlocks(ctx, strings.NewReader(trickySource), src, nil)
	if err != context.Canceled {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}
