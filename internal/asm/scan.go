// Streaming assembly reading: the constant-memory file-fed producer
// side of the engine's RunStream pipeline. Parse + block.Partition
// materialize the whole program before the first block is available;
// BlockScanner reads line by line and emits each basic block as soon
// as its boundary is seen, holding only the current block in memory —
// and recycles caller-provided block storage, so scanning a gigabyte
// of assembly occupies one block at a time.
//
// The scanner replicates Parse's line handling (comments, shared-line
// and stacked labels, directive skipping) and Partition's boundary
// rules (a label starts a block, a block-ending opcode ends one,
// synthesized ".bb<n>" names for unlabeled blocks) exactly: the block
// sequence is identical to block.Partition(Parse(src)) on any input.
package asm

import (
	"bufio"
	"context"
	"io"
	"strings"

	"daginsched/internal/block"
	"daginsched/internal/isa"
)

// BlockScanner incrementally partitions a textual assembly stream into
// basic blocks.
type BlockScanner struct {
	sc   *bufio.Scanner
	line int

	pendingLabel string
	// pendingInst is an already-parsed instruction whose label closed
	// the previous block; it leads the next one.
	pendingInst isa.Inst
	hasPending  bool

	index  int // global instruction index (Block.Start numbering)
	blocks int // blocks emitted, for SynthName
	err    error
}

// NewBlockScanner returns a scanner over r. The line buffer grows to
// 1MiB, far beyond any plausible assembly line.
func NewBlockScanner(r io.Reader) *BlockScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &BlockScanner{sc: sc}
}

// Next fills b with the next basic block, recycling b's instruction
// storage, and reports whether a block was produced. It returns false
// with a nil error at end of input and false with the error (sticky)
// on a malformed line or reader failure.
func (s *BlockScanner) Next(b *block.Block) (bool, error) {
	if s.err != nil {
		return false, s.err
	}
	b.Insts = b.Insts[:0]
	b.Name = ""
	b.Start = 0
	b.WindowPiece = 0
	for {
		var in isa.Inst
		if s.hasPending {
			in, s.hasPending = s.pendingInst, false
		} else {
			var ok bool
			in, ok, s.err = s.scanInst()
			if s.err != nil {
				return false, s.err
			}
			if !ok {
				if len(b.Insts) > 0 {
					s.blocks++
					return true, nil
				}
				return false, nil
			}
		}
		if in.Label != "" && len(b.Insts) > 0 {
			s.pendingInst, s.hasPending = in, true
			s.blocks++
			return true, nil
		}
		if len(b.Insts) == 0 {
			b.Name = in.Label
			if b.Name == "" {
				b.Name = block.SynthName(s.blocks)
			}
			b.Start = s.index
		}
		in.Index = len(b.Insts)
		b.Insts = append(b.Insts, in)
		s.index++
		if in.Op.EndsBlock() {
			s.blocks++
			return true, nil
		}
	}
}

// scanInst parses forward to the next instruction, carrying labels
// across blank, comment and directive lines exactly as Parse does.
func (s *BlockScanner) scanInst() (isa.Inst, bool, error) {
	for s.sc.Scan() {
		s.line++
		raw := s.sc.Text()
		line := raw
		if i := strings.IndexByte(line, '!'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading label(s).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t,[") {
				break
			}
			s.pendingLabel = line[:i]
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") && !strings.HasPrefix(line, ".L") {
			continue // assembler directive
		}
		in, err := parseInst(line)
		if err != nil {
			return isa.Inst{}, false, &ParseError{Line: s.line, Text: raw, Msg: err.Error()}
		}
		in.Label = s.pendingLabel
		s.pendingLabel = ""
		return in, true, nil
	}
	return isa.Inst{}, false, s.sc.Err()
}

// StreamBlocks scans r and sends each basic block onto out, recycling
// storage from the free list (non-blocking receives; nil if the caller
// does not recycle) — the assembly-fed twin of synth.StreamCorpus. out
// is closed on return. A cancelled ctx stops the stream at the next
// block boundary and returns ctx's error with the tallies so far.
func StreamBlocks(ctx context.Context, r io.Reader, out chan<- *block.Block, free <-chan *block.Block) (blocks, insts int64, err error) {
	defer close(out)
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	sc := NewBlockScanner(r)
	for {
		var b *block.Block
		select {
		case b = <-free:
		default:
			b = &block.Block{}
		}
		ok, err := sc.Next(b)
		if err != nil {
			return blocks, insts, err
		}
		if !ok {
			return blocks, insts, nil
		}
		n := int64(b.Len())
		select {
		case out <- b:
		case <-done:
			return blocks, insts, ctx.Err()
		}
		blocks++
		insts += n
	}
}
