package asm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"daginsched/internal/isa"
	"daginsched/internal/testgen"
)

// TestParseNeverPanics: arbitrary byte soup must produce either
// instructions or an error, never a panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// asmAlphabet biases random inputs toward assembler-shaped text so the
// fuzz reaches deeper into operand parsing than raw bytes would.
const asmAlphabet = "adlmovstbnexorcmp %[]+-,.!:_0123456789fgi\n\t()"

func TestParseNeverPanicsAsmShaped(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		var b strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteByte(asmAlphabet[rng.Intn(len(asmAlphabet))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestParseMutatedValidPrograms: corrupting one byte of a valid program
// must never panic and must either parse or report a line number.
func TestParseMutatedValidPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for seed := int64(0); seed < 10; seed++ {
		src := Print(testgen.Block(seed, 20))
		for trial := 0; trial < 100; trial++ {
			b := []byte(src)
			b[rng.Intn(len(b))] = asmAlphabet[rng.Intn(len(asmAlphabet))]
			mutated := string(b)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Parse of mutated program panicked: %v\n%s", r, mutated)
					}
				}()
				if _, err := Parse(mutated); err != nil {
					pe, ok := err.(*ParseError)
					if !ok {
						t.Fatalf("non-ParseError from Parse: %v", err)
					}
					if pe.Line < 1 || pe.Line > strings.Count(mutated, "\n")+1 {
						t.Fatalf("bad line number %d", pe.Line)
					}
				}
			}()
		}
	}
}

// canonicalInst builds one representative instruction per opcode.
func canonicalInst(op isa.Opcode) isa.Inst {
	switch op.Format() {
	case isa.FmtNone:
		return isa.Inst{Op: op, RS1: isa.RegNone, RS2: isa.RegNone, RD: isa.RegNone, Mem: isa.NoMem}
	case isa.Fmt3:
		switch op {
		case isa.MOV:
			return isa.MovI(7, isa.O1)
		case isa.CMP:
			return isa.CmpI(isa.O0, 3)
		}
		return isa.RRR(op, isa.O0, isa.O1, isa.O2)
	case isa.FmtLoad:
		rd := isa.Reg(isa.O0)
		if op == isa.LDF || op == isa.LDDF {
			rd = isa.F(2)
		}
		return isa.Load(op, isa.FP, -8, rd)
	case isa.FmtStore:
		rd := isa.Reg(isa.O0)
		if op == isa.STF || op == isa.STDF {
			rd = isa.F(2)
		}
		return isa.Store(op, rd, isa.SP, 64)
	case isa.FmtBranch:
		return isa.Branch(op, ".L9")
	case isa.FmtCall:
		return isa.Call("_fn")
	case isa.FmtSethi:
		return isa.Sethi(4096, isa.G1)
	case isa.FmtFp2:
		return isa.Fp2(op, isa.F(2), isa.F(4))
	case isa.FmtFp3:
		return isa.Fp3(op, isa.F(0), isa.F(2), isa.F(4))
	case isa.FmtFcmp:
		return isa.Fcmp(op, isa.F(0), isa.F(2))
	case isa.FmtJmpl:
		return isa.Inst{Op: op, RS1: isa.I7, RS2: isa.RegNone, RD: isa.G0,
			Imm: 8, HasImm: true, Mem: isa.NoMem}
	case isa.FmtRdY:
		return isa.Inst{Op: op, RS1: isa.RegNone, RS2: isa.RegNone, RD: isa.O3, Mem: isa.NoMem}
	}
	panic("unhandled format")
}

// TestEveryOpcodeRoundTrips prints and reparses one canonical
// instruction per opcode in the ISA.
func TestEveryOpcodeRoundTrips(t *testing.T) {
	for op := 0; op < isa.NumOpcodes; op++ {
		in := canonicalInst(isa.Opcode(op))
		printed := Print([]isa.Inst{in})
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("%v: %v\n%s", isa.Opcode(op), err, printed)
		}
		if len(again) != 1 {
			t.Fatalf("%v: got %d instructions", isa.Opcode(op), len(again))
		}
		a, b := in, again[0]
		a.Index, b.Index = 0, 0
		if a != b {
			t.Fatalf("%v: %+v != %+v (%q)", isa.Opcode(op), a, b, printed)
		}
	}
}

// TestPrintedProgramsAlwaysReparse is the total round-trip property
// over the generator's full output space.
func TestPrintedProgramsAlwaysReparse(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		prog := testgen.Block(seed, 35)
		printed := Print(prog)
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(again) != len(prog) {
			t.Fatalf("seed %d: %d -> %d instructions", seed, len(prog), len(again))
		}
	}
}
