// Package asm parses and prints the SPARC-like textual assembly of
// package isa. The dialect follows SunOS assembler output — the format
// of the paper's benchmark inputs ("cc -O4 -S") — restricted to the
// opcodes the ISA defines:
//
//	! comment
//	label:
//	        ld      [%fp-8], %o0
//	        add     %o0, 1, %o1
//	        sethi   %hi(4096), %g1
//	        st      %o1, [_counter]
//	        bne,a   .L77
//	        nop
//
// The parser is line-oriented; a label may share a line with an
// instruction. Errors carry line numbers.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"daginsched/internal/isa"
)

// ParseError is a parse failure with its source line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("asm: line %d: %s (%q)", e.Line, e.Msg, e.Text)
}

// Parse assembles a program. Labels attach to the following
// instruction; directives (lines starting with '.') and comments are
// skipped.
func Parse(src string) ([]isa.Inst, error) {
	var out []isa.Inst
	pendingLabel := ""
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '!'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading label(s).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 || strings.ContainsAny(line[:i], " \t,[") {
				break
			}
			pendingLabel = line[:i]
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") && !strings.HasPrefix(line, ".L") {
			continue // assembler directive
		}
		in, err := parseInst(line)
		if err != nil {
			return nil, &ParseError{Line: ln + 1, Text: raw, Msg: err.Error()}
		}
		in.Label = pendingLabel
		pendingLabel = ""
		in.Index = len(out)
		out = append(out, in)
	}
	return out, nil
}

// parseInst assembles one instruction line (no label, no comment).
func parseInst(line string) (isa.Inst, error) {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	annul := false
	if strings.HasSuffix(mnem, ",a") {
		annul = true
		mnem = strings.TrimSuffix(mnem, ",a")
	}
	op, ok := isa.OpcodeByName(mnem)
	if !ok {
		return isa.Inst{}, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	ops := splitOperands(rest)
	in := isa.Inst{Op: op, RS1: isa.RegNone, RS2: isa.RegNone, RD: isa.RegNone,
		Mem: isa.NoMem, Annul: annul}
	if annul && !op.IsBranch() {
		return in, fmt.Errorf("%q cannot be annulled", mnem)
	}

	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	switch op.Format() {
	case isa.FmtNone:
		return in, need(0)
	case isa.Fmt3:
		switch op {
		case isa.MOV: // mov rs2|imm, rd
			if err := need(2); err != nil {
				return in, err
			}
			in.RS1 = isa.G0
			if err := parseRegOrImm(ops[0], &in); err != nil {
				return in, err
			}
			return in, parseRegInto(ops[1], &in.RD)
		case isa.CMP: // cmp rs1, rs2|imm
			if err := need(2); err != nil {
				return in, err
			}
			in.RD = isa.G0
			if err := parseRegInto(ops[0], &in.RS1); err != nil {
				return in, err
			}
			return in, parseRegOrImm(ops[1], &in)
		}
		if op == isa.RESTORE && len(ops) == 0 { // bare restore
			in.RS1, in.RS2, in.RD = isa.G0, isa.G0, isa.G0
			return in, nil
		}
		if err := need(3); err != nil {
			return in, err
		}
		if err := parseRegInto(ops[0], &in.RS1); err != nil {
			return in, err
		}
		if err := parseRegOrImm(ops[1], &in); err != nil {
			return in, err
		}
		return in, parseRegInto(ops[2], &in.RD)
	case isa.FmtLoad:
		if err := need(2); err != nil {
			return in, err
		}
		mem, err := parseMem(ops[0])
		if err != nil {
			return in, err
		}
		in.Mem = mem
		return in, parseRegInto(ops[1], &in.RD)
	case isa.FmtStore:
		if err := need(2); err != nil {
			return in, err
		}
		if err := parseRegInto(ops[0], &in.RD); err != nil {
			return in, err
		}
		mem, err := parseMem(ops[1])
		in.Mem = mem
		return in, err
	case isa.FmtBranch, isa.FmtCall:
		if err := need(1); err != nil {
			return in, err
		}
		in.Target = ops[0]
		return in, nil
	case isa.FmtSethi:
		if err := need(2); err != nil {
			return in, err
		}
		v, err := parseHi(ops[0])
		if err != nil {
			return in, err
		}
		in.Imm, in.HasImm = v, true
		return in, parseRegInto(ops[1], &in.RD)
	case isa.FmtFp2:
		if err := need(2); err != nil {
			return in, err
		}
		if err := parseRegInto(ops[0], &in.RS2); err != nil {
			return in, err
		}
		return in, parseRegInto(ops[1], &in.RD)
	case isa.FmtFp3:
		if err := need(3); err != nil {
			return in, err
		}
		if err := parseRegInto(ops[0], &in.RS1); err != nil {
			return in, err
		}
		if err := parseRegInto(ops[1], &in.RS2); err != nil {
			return in, err
		}
		return in, parseRegInto(ops[2], &in.RD)
	case isa.FmtFcmp:
		if err := need(2); err != nil {
			return in, err
		}
		if err := parseRegInto(ops[0], &in.RS1); err != nil {
			return in, err
		}
		return in, parseRegInto(ops[1], &in.RS2)
	case isa.FmtJmpl:
		if err := need(2); err != nil {
			return in, err
		}
		base, off, err := parseBasePlusOffset(ops[0])
		if err != nil {
			return in, err
		}
		in.RS1, in.Imm, in.HasImm = base, off, true
		return in, parseRegInto(ops[1], &in.RD)
	case isa.FmtRdY:
		if err := need(2); err != nil {
			return in, err
		}
		if ops[0] != "%y" {
			return in, fmt.Errorf("rd reads %%y, got %q", ops[0])
		}
		return in, parseRegInto(ops[1], &in.RD)
	}
	return in, fmt.Errorf("unhandled format for %q", mnem)
}

// splitOperands splits on commas outside brackets.
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseRegInto(s string, dst *isa.Reg) error {
	r, err := isa.ParseReg(s)
	if err != nil {
		return err
	}
	*dst = r
	return nil
}

// parseRegOrImm fills RS2 or Imm from the second ALU operand.
func parseRegOrImm(s string, in *isa.Inst) error {
	if strings.HasPrefix(s, "%") {
		return parseRegInto(s, &in.RS2)
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return fmt.Errorf("bad immediate %q", s)
	}
	in.Imm, in.HasImm = int32(v), true
	return nil
}

// parseHi parses "%hi(123)" or a bare integer.
func parseHi(s string) (int32, error) {
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		s = s[4 : len(s)-1]
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad sethi operand %q", s)
	}
	return int32(v), nil
}

// parseBasePlusOffset parses "%i7+8".
func parseBasePlusOffset(s string) (isa.Reg, int32, error) {
	i := strings.IndexAny(s, "+-")
	if i < 0 {
		r, err := isa.ParseReg(s)
		return r, 0, err
	}
	r, err := isa.ParseReg(s[:i])
	if err != nil {
		return isa.RegNone, 0, err
	}
	v, err := strconv.ParseInt(s[i:], 0, 32)
	if err != nil {
		return isa.RegNone, 0, fmt.Errorf("bad offset %q", s[i:])
	}
	return r, int32(v), nil
}

// parseMem parses "[%fp-8]", "[%o0+%o1]", "[_sym]", "[_sym+%g1+4]".
func parseMem(s string) (isa.MemExpr, error) {
	m := isa.NoMem
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return m, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	// Split into +/- separated terms, keeping signs on numbers.
	terms := splitTerms(body)
	if len(terms) == 0 {
		return m, fmt.Errorf("empty memory operand %q", s)
	}
	for _, term := range terms {
		switch {
		case strings.HasPrefix(term, "%"):
			r, err := isa.ParseReg(term)
			if err != nil {
				return m, err
			}
			if m.Base == isa.RegNone {
				m.Base = r
			} else if m.Index == isa.RegNone {
				m.Index = r
			} else {
				return m, fmt.Errorf("too many registers in %q", s)
			}
		case term[0] == '+' || term[0] == '-' || (term[0] >= '0' && term[0] <= '9'):
			v, err := strconv.ParseInt(term, 0, 32)
			if err != nil {
				return m, fmt.Errorf("bad displacement %q", term)
			}
			m.Offset += int32(v)
		default:
			if m.Sym != "" {
				return m, fmt.Errorf("two symbols in %q", s)
			}
			m.Sym = term
		}
	}
	if m.Sym == "" && m.Base == isa.RegNone {
		return m, fmt.Errorf("memory operand %q has no base or symbol", s)
	}
	if m.Sym != "" && m.Base == isa.RegNone {
		m.Base = isa.G0
	}
	return m, nil
}

// splitTerms splits "a+%g1-8" into ["a", "%g1", "-8"].
func splitTerms(s string) []string {
	var out []string
	start := 0
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			out = append(out, strings.TrimSpace(s[start:i]))
			if s[i] == '+' {
				start = i + 1
			} else {
				start = i
			}
			i++ // skip sign character in next scan step
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	// Drop empties (leading '+').
	var clean []string
	for _, t := range out {
		if t != "" && t != "+" {
			clean = append(clean, t)
		}
	}
	return clean
}

// Print renders a program back to assembly text, one instruction per
// line with labels on their own lines.
func Print(insts []isa.Inst) string {
	var b strings.Builder
	for i := range insts {
		if insts[i].Label != "" {
			b.WriteString(insts[i].Label)
			b.WriteString(":\n")
		}
		b.WriteString("\t")
		b.WriteString(insts[i].String())
		b.WriteString("\n")
	}
	return b.String()
}
