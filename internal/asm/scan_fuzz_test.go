// Fuzzing for the streaming BlockScanner: the daemon feeds it raw
// request bodies straight off the network, so it must hold three
// properties under arbitrary byte soup — never panic, make errors
// sticky (a poisoned scanner keeps refusing instead of resuming
// mid-stream with silently dropped lines), and agree block-for-block
// with the materializing Parse + Partition path on every input both
// can process.
package asm

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/isa"
	"daginsched/internal/testgen"
)

// fuzzScanAll drains a BlockScanner into deep-copied blocks, reusing one
// recycled block for every Next call the way StreamBlocks' free list
// does, so the fuzz also exercises storage recycling.
func fuzzScanAll(src string) ([]*block.Block, error) {
	sc := NewBlockScanner(strings.NewReader(src))
	var out []*block.Block
	var b block.Block
	for {
		ok, err := sc.Next(&b)
		if err != nil {
			// Sticky: every later Next must keep returning the same error.
			for i := 0; i < 3; i++ {
				if ok2, err2 := sc.Next(&b); ok2 || err2 != err {
					return nil, errors.New("scanner error is not sticky")
				}
			}
			return out, err
		}
		if !ok {
			return out, nil
		}
		cp := &block.Block{Name: b.Name, Start: b.Start}
		cp.Insts = append([]isa.Inst(nil), b.Insts...)
		out = append(out, cp)
	}
}

// FuzzBlockScanner drives the scanner with hostile inputs and checks
// it against Parse + Partition. The differential is skipped when the
// two paths legitimately diverge: carriage returns (bufio.ScanLines
// strips a trailing \r, Parse's strings.Split does not) and lines past
// the scanner's 1MiB buffer (Parse has no line cap).
func FuzzBlockScanner(f *testing.F) {
	f.Add("top:\n\tld [%fp-8], %o0\n\tadd %o0, %o1, %o2\n\tbne top\n")
	f.Add(Print(testgen.Block(1, 24)))
	f.Add("a:b:c:\tnop\n")          // stacked labels
	f.Add("\tnop ! trailing\n.x\n") // comment + directive
	f.Add("x\x00y:\n\tnop")         // NUL bytes
	f.Add("lbl:")                   // truncated: label, no instruction
	f.Add("\tld [%fp")              // truncated mid-operand
	f.Add(strings.Repeat("\tnop\n", 300))
	f.Add("\tbne a\n\tbne b\nc:\n\tcmp %o0, 1\n")
	f.Add("!: ,[\n::\n\t.L:\n")

	f.Fuzz(func(t *testing.T, src string) {
		got, scanErr := fuzzScanAll(src)

		insts, parseErr := Parse(src)
		if strings.ContainsRune(src, '\r') {
			return
		}
		if scanErr != nil {
			if errors.Is(scanErr, bufio.ErrTooLong) {
				return
			}
			var pe *ParseError
			if !errors.As(scanErr, &pe) {
				t.Fatalf("scanner error is neither ErrTooLong nor ParseError: %v", scanErr)
			}
			if pe.Line < 1 || pe.Line > strings.Count(src, "\n")+1 {
				t.Fatalf("scanner ParseError has impossible line %d", pe.Line)
			}
			if parseErr == nil {
				t.Fatalf("scanner rejected input Parse accepts: %v", scanErr)
			}
			return
		}
		if parseErr != nil {
			t.Fatalf("scanner accepted input Parse rejects: %v", parseErr)
		}

		want := block.Partition(insts)
		if len(got) != len(want) {
			t.Fatalf("scanner emitted %d blocks, Partition %d", len(got), len(want))
		}
		for i := range want {
			g, w := got[i], want[i]
			if g.Name != w.Name || g.Start != w.Start || len(g.Insts) != len(w.Insts) {
				t.Fatalf("block %d: scanner %q start %d len %d, Partition %q start %d len %d",
					i, g.Name, g.Start, len(g.Insts), w.Name, w.Start, len(w.Insts))
			}
			for k := range w.Insts {
				if g.Insts[k] != w.Insts[k] {
					t.Fatalf("block %d inst %d: %+v != %+v", i, k, g.Insts[k], w.Insts[k])
				}
			}
		}
	})
}

// TestBlockScannerOversizedLine pins the 1MiB line cap: a longer line
// must surface bufio.ErrTooLong as a sticky error, not hang or panic.
func TestBlockScannerOversizedLine(t *testing.T) {
	var src bytes.Buffer
	src.WriteString("\tnop\n\t")
	src.WriteString(strings.Repeat("a", 2<<20))
	src.WriteString("\n")
	_, err := fuzzScanAll(src.String())
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("oversized line: got %v, want bufio.ErrTooLong", err)
	}
}

// TestBlockScannerRecycledAfterError proves an error on one scanner
// does not poison a recycled block handed to a fresh scanner.
func TestBlockScannerRecycledAfterError(t *testing.T) {
	var b block.Block
	bad := NewBlockScanner(strings.NewReader("\tld [%fp\n"))
	if ok, err := bad.Next(&b); ok || err == nil {
		t.Fatalf("malformed input: ok=%v err=%v", ok, err)
	}
	good := NewBlockScanner(strings.NewReader("top:\n\tnop\n"))
	ok, err := good.Next(&b)
	if !ok || err != nil {
		t.Fatalf("fresh scanner with recycled block: ok=%v err=%v", ok, err)
	}
	if b.Name != "top" || len(b.Insts) != 1 || b.Insts[0].Op != isa.NOP {
		t.Fatalf("recycled block carries stale state: %+v", b)
	}
}
