package asm

import (
	"strings"
	"testing"

	"daginsched/internal/isa"
	"daginsched/internal/testgen"
)

func parseOne(t *testing.T, line string) isa.Inst {
	t.Helper()
	prog, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	if len(prog) != 1 {
		t.Fatalf("Parse(%q): %d instructions", line, len(prog))
	}
	return prog[0]
}

func TestParseALU(t *testing.T) {
	in := parseOne(t, "\tadd %o0, %o1, %o2")
	if in.Op != isa.ADD || in.RS1 != isa.O0 || in.RS2 != isa.O1 || in.RD != isa.O2 {
		t.Errorf("parsed %+v", in)
	}
	imm := parseOne(t, "sub %l0, 16, %l1")
	if !imm.HasImm || imm.Imm != 16 {
		t.Errorf("parsed %+v", imm)
	}
	neg := parseOne(t, "add %sp, -96, %sp")
	if neg.Imm != -96 {
		t.Errorf("negative immediate: %+v", neg)
	}
}

func TestParseSynthetic(t *testing.T) {
	mov := parseOne(t, "mov 55, %l1")
	if mov.Op != isa.MOV || mov.RS1 != isa.G0 || mov.Imm != 55 || mov.RD != isa.L1 {
		t.Errorf("mov: %+v", mov)
	}
	movr := parseOne(t, "mov %g2, %o0")
	if movr.RS2 != isa.G2 || movr.HasImm {
		t.Errorf("mov reg: %+v", movr)
	}
	cmp := parseOne(t, "cmp %o0, 7")
	if cmp.Op != isa.CMP || cmp.RD != isa.G0 || cmp.Imm != 7 {
		t.Errorf("cmp: %+v", cmp)
	}
}

func TestParseMemory(t *testing.T) {
	ld := parseOne(t, "ld [%fp-8], %o0")
	if ld.Mem.Base != isa.FP || ld.Mem.Offset != -8 || ld.RD != isa.O0 {
		t.Errorf("ld: %+v", ld)
	}
	st := parseOne(t, "st %o0, [%sp+64]")
	if st.Mem.Base != isa.SP || st.Mem.Offset != 64 || st.RD != isa.O0 {
		t.Errorf("st: %+v", st)
	}
	idx := parseOne(t, "ld [%o0+%o1], %o2")
	if idx.Mem.Base != isa.O0 || idx.Mem.Index != isa.O1 {
		t.Errorf("indexed: %+v", idx)
	}
	sym := parseOne(t, "ld [_errno], %o0")
	if sym.Mem.Sym != "_errno" || sym.Mem.Base != isa.G0 {
		t.Errorf("symbol: %+v", sym)
	}
	symoff := parseOne(t, "st %g1, [_tab+%g2+12]")
	if symoff.Mem.Sym != "_tab" || symoff.Mem.Base != isa.G2 || symoff.Mem.Offset != 12 {
		t.Errorf("symbol+reg+off: %+v", symoff)
	}
}

func TestParseBranchesAndCalls(t *testing.T) {
	br := parseOne(t, "bne .L77")
	if br.Op != isa.BNE || br.Target != ".L77" || br.Annul {
		t.Errorf("bne: %+v", br)
	}
	ann := parseOne(t, "be,a .L9")
	if !ann.Annul {
		t.Errorf("annul flag lost: %+v", ann)
	}
	call := parseOne(t, "call _printf")
	if call.Op != isa.CALL || call.Target != "_printf" {
		t.Errorf("call: %+v", call)
	}
	ret := parseOne(t, "ret")
	if ret.Op != isa.RET {
		t.Errorf("ret: %+v", ret)
	}
	jmpl := parseOne(t, "jmpl %i7+8, %g0")
	if jmpl.RS1 != isa.I7 || jmpl.Imm != 8 || jmpl.RD != isa.G0 {
		t.Errorf("jmpl: %+v", jmpl)
	}
}

func TestParseFP(t *testing.T) {
	f3 := parseOne(t, "faddd %f0, %f2, %f4")
	if f3.Op != isa.FADDD || f3.RS1 != isa.F(0) || f3.RS2 != isa.F(2) || f3.RD != isa.F(4) {
		t.Errorf("faddd: %+v", f3)
	}
	f2 := parseOne(t, "fmovs %f1, %f3")
	if f2.RS2 != isa.F(1) || f2.RD != isa.F(3) {
		t.Errorf("fmovs: %+v", f2)
	}
	fc := parseOne(t, "fcmpd %f0, %f2")
	if fc.RS1 != isa.F(0) || fc.RS2 != isa.F(2) {
		t.Errorf("fcmpd: %+v", fc)
	}
}

func TestParseSethi(t *testing.T) {
	in := parseOne(t, "sethi %hi(4096), %g1")
	if in.Op != isa.SETHI || in.Imm != 4096 || in.RD != isa.G1 {
		t.Errorf("sethi: %+v", in)
	}
}

func TestParseMisc(t *testing.T) {
	if parseOne(t, "nop").Op != isa.NOP {
		t.Error("nop")
	}
	save := parseOne(t, "save %sp, -96, %sp")
	if save.Op != isa.SAVE || save.Imm != -96 {
		t.Errorf("save: %+v", save)
	}
	if parseOne(t, "restore").Op != isa.RESTORE {
		t.Error("bare restore")
	}
	rdy := parseOne(t, "rd %y, %o3")
	if rdy.Op != isa.RDY || rdy.RD != isa.O3 {
		t.Errorf("rd: %+v", rdy)
	}
}

func TestParseLabelsAndComments(t *testing.T) {
	src := `
! leading comment
.text
.L5:	add %o0, 1, %o0   ! trailing comment
	bne .L5
	nop
done:
	ret
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("parsed %d instructions", len(prog))
	}
	if prog[0].Label != ".L5" || prog[3].Label != "done" {
		t.Errorf("labels: %q %q", prog[0].Label, prog[3].Label)
	}
	if prog[0].Index != 0 || prog[3].Index != 3 {
		t.Error("indices not assigned")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"frobnicate %o0",
		"add %o0, %o1",
		"add %q9, %o1, %o2",
		"ld %o0, %o1",
		"ld [], %o0",
		"mov,a 5, %o0",
		"rd %o1, %o2",
		"sethi %hi(x), %g1",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		} else if pe, ok := err.(*ParseError); !ok || pe.Line != 1 {
			t.Errorf("Parse(%q): error without line info: %v", c, err)
		}
	}
}

func TestRoundTripHandwritten(t *testing.T) {
	src := strings.Join([]string{
		"L0:",
		"\tsave %sp, -96, %sp",
		"\tsethi %hi(4096), %g1",
		"\tld [%fp-8], %o0",
		"\tlddf [%sp+64], %f2",
		"\tmov 7, %o1",
		"\tcmp %o0, %o1",
		"\tfaddd %f2, %f4, %f6",
		"\tstdf %f6, [%sp+72]",
		"\tbne,a L0",
		"\tadd %o0, 1, %o0",
		"\tret",
		"\trestore %g0, %g0, %g0",
	}, "\n") + "\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	again, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if len(again) != len(prog) {
		t.Fatalf("round trip changed length %d -> %d", len(prog), len(again))
	}
	for i := range prog {
		a, b := prog[i], again[i]
		a.Index, b.Index = 0, 0
		if a != b {
			t.Errorf("inst %d: %+v != %+v", i, a, b)
		}
	}
}

func TestRoundTripGenerated(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := testgen.Block(seed, 40)
		printed := Print(prog)
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, printed)
		}
		if len(again) != len(prog) {
			t.Fatalf("seed %d: length %d -> %d", seed, len(prog), len(again))
		}
		for i := range prog {
			a, b := prog[i], again[i]
			a.Index, b.Index = 0, 0
			if a != b {
				t.Errorf("seed %d inst %d: %+v != %+v (%s)", seed, i, a, b, prog[i].String())
			}
		}
	}
}

func TestPrintLabels(t *testing.T) {
	prog := []isa.Inst{
		{Op: isa.NOP, RS1: isa.RegNone, RS2: isa.RegNone, RD: isa.RegNone,
			Mem: isa.NoMem, Label: "entry"},
	}
	out := Print(prog)
	if !strings.Contains(out, "entry:\n") {
		t.Errorf("Print output %q lacks label line", out)
	}
}
