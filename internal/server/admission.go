// Admission control: the token buckets and tenant registry behind the
// daemon's 429 load-shedding. Both are deliberately simple — a
// continuous-fill token bucket per scope (one global, one per tenant)
// and a bounded tenant registry that degrades to a shared overflow
// bucket instead of growing without bound under a tenant-name flood.
//
// The bucket math (DESIGN.md §13): a bucket with fill rate r tokens/s
// and capacity (burst) c holds tokens(t) = min(c, tokens(t₀) +
// r·(t−t₀)). A request is admitted iff tokens ≥ 1, spending one; a
// refusal computes the exact refill horizon (1 − tokens)/r and reports
// it so the handler can emit a truthful Retry-After.
package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// bucket is one token bucket. rate and burst are immutable after
// construction; the fill state is guarded by mu.
type bucket struct {
	mu     sync.Mutex //sched:lock-rank 3
	tokens float64    //sched:guarded-by mu
	last   time.Time  //sched:guarded-by mu
	rate   float64    // tokens per second; <= 0 means unlimited
	burst  float64    // capacity
}

// newBucket returns a full bucket. rate <= 0 disables limiting; a
// non-positive burst with a positive rate gets a one-token capacity so
// the bucket still admits.
func newBucket(rate, burst float64) *bucket {
	if burst < 1 {
		burst = 1
	}
	return &bucket{tokens: burst, rate: rate, burst: burst}
}

// take attempts to spend one token at time now. It reports success, or
// on refusal how long until a token will have accumulated.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// tenant is one quota scope: its private bucket plus served/shed
// tallies for /stats.
type tenant struct {
	name   string
	tb     *bucket
	served atomic.Int64
	shed   atomic.Int64
}

// tenantSet is the bounded tenant registry. Unknown tenants are
// admitted lazily up to max distinct names; past that every new name
// shares one overflow tenant (and its bucket), so a hostile client
// cycling tenant names can neither grow the map unboundedly nor mint
// itself fresh quota.
type tenantSet struct {
	mu       sync.Mutex         //sched:lock-rank 2
	m        map[string]*tenant //sched:guarded-by mu
	overflow *tenant
	rate     float64 // per-tenant fill rate
	burst    float64 // per-tenant burst
	max      int     // distinct-tenant cap
}

func newTenantSet(rate, burst float64, max int) *tenantSet {
	if max < 1 {
		max = 1
	}
	return &tenantSet{
		m:        make(map[string]*tenant),
		overflow: &tenant{name: "overflow", tb: newBucket(rate, burst)},
		rate:     rate,
		burst:    burst,
		max:      max,
	}
}

// get resolves name to its tenant, creating it while the registry has
// room and falling back to the shared overflow tenant once full.
func (s *tenantSet) get(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.m[name]; ok {
		return t
	}
	if len(s.m) >= s.max {
		return s.overflow
	}
	t := &tenant{name: name, tb: newBucket(s.rate, s.burst)}
	s.m[name] = t
	return t
}

// snapshot copies every tenant's tallies (overflow included once it
// has seen traffic) into dst for /stats.
func (s *tenantSet) snapshot(dst map[string]TenantCounts) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, t := range s.m {
		dst[name] = TenantCounts{Served: t.served.Load(), Shed: t.shed.Load()}
	}
	if v, h := s.overflow.served.Load(), s.overflow.shed.Load(); v != 0 || h != 0 {
		dst[s.overflow.name] = TenantCounts{Served: v, Shed: h}
	}
}
