package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"daginsched/internal/engine"
	"daginsched/internal/fault"
	"daginsched/internal/machine"
)

// corpusAsm renders n labeled basic blocks of valid assembly, varied
// by index so the corpus has distinct block fingerprints (with repeats
// every 7·13 blocks, exercising the schedule cache).
func corpusAsm(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "b%d:\n", i)
		fmt.Fprintf(&sb, "\tld [%%fp-%d], %%o0\n", 4+(i%7)*4)
		sb.WriteString("\tadd %o0, 1, %o1\n")
		fmt.Fprintf(&sb, "\tmov %d, %%l7\n", i%13)
		sb.WriteString("\tcmp %o1, 0\n")
		fmt.Fprintf(&sb, "\tbne b%d\n", i) // the CTI ends the block
	}
	return sb.String()
}

// newTestServer builds a server over a fresh engine. Mutate the
// configs through the hooks before construction.
func newTestServer(t *testing.T, ecfg func(*engine.Config), scfg func(*Config)) *Server {
	t.Helper()
	ec := engine.Config{Workers: 2, Model: machine.Super2(), KeepOrders: true, Cache: true}
	if ecfg != nil {
		ecfg(&ec)
	}
	eng, err := engine.New(ec)
	if err != nil {
		t.Fatal(err)
	}
	sc := Config{Engine: eng}
	if scfg != nil {
		scfg(&sc)
	}
	s, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// post runs one request through the handler tree.
func post(s *Server, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func decodeSchedule(t *testing.T, w *httptest.ResponseRecorder) scheduleResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp scheduleResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, w.Body.String())
	}
	return resp
}

// referenceOrders schedules body on a fresh cache-disabled engine —
// the independent witness server responses are compared against.
func referenceOrders(t *testing.T, body string) [][]int32 {
	t.Helper()
	eng, err := engine.New(engine.Config{Workers: 1, Model: machine.Super2(), KeepOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := scanBlocks(context.Background(), []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	return res.Orders
}

func requireOrders(t *testing.T, got []blockResult, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i].Order) != len(want[i]) {
			t.Fatalf("block %d: order length %d, want %d", i, len(got[i].Order), len(want[i]))
		}
		for k := range want[i] {
			if got[i].Order[k] != want[i][k] {
				t.Fatalf("block %d position %d: node %d, want %d", i, k, got[i].Order[k], want[i][k])
			}
		}
	}
}

// TestScheduleBatch pins the batch endpoint: a valid unit comes back
// 200 with per-block schedules byte-identical to a cache-disabled
// reference engine, all at the primary rung.
func TestScheduleBatch(t *testing.T) {
	s := newTestServer(t, nil, nil)
	body := corpusAsm(40)
	resp := decodeSchedule(t, post(s, "/v1/schedule", body, nil))
	if resp.Blocks != 40 {
		t.Fatalf("blocks = %d, want 40", resp.Blocks)
	}
	requireOrders(t, resp.Results, referenceOrders(t, body))
	for i, r := range resp.Results {
		if r.Rung != "primary" {
			t.Fatalf("block %d served at rung %q", i, r.Rung)
		}
	}
	snap := s.Stats()
	if snap.Served != 1 || snap.Blocks != 40 {
		t.Fatalf("stats served=%d blocks=%d, want 1/40", snap.Served, snap.Blocks)
	}
}

// TestMalformedAsm pins the 4xx taxonomy: a malformed body is a 400
// with the scanner's line number, and the daemon is not poisoned — the
// next valid request on the same server succeeds.
func TestMalformedAsm(t *testing.T) {
	s := newTestServer(t, nil, nil)
	w := post(s, "/v1/schedule", "b0:\n\tld [%fp-4], %o0\n\tthis is not assembly\n", nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Line != 3 {
		t.Fatalf("error line %d, want 3 (%s)", eb.Line, eb.Error)
	}
	if w := post(s, "/v1/schedule", corpusAsm(3), nil); w.Code != http.StatusOK {
		t.Fatalf("valid request after malformed one: %d", w.Code)
	}
	if n := s.Stats().BadRequests; n != 1 {
		t.Fatalf("bad_requests = %d, want 1", n)
	}
	if w := post(s, "/v1/schedule", "", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("empty body: %d, want 400", w.Code)
	}
}

// TestQueueShed saturates the engine queue (the semaphore is held by
// the test, standing in for a long run) and requires the next request
// to shed 429 with a Retry-After instead of piling up.
func TestQueueShed(t *testing.T) {
	s := newTestServer(t, nil, func(c *Config) { c.MaxQueue = 1 })
	s.sem <- struct{}{} // occupy the engine
	s.queued.Add(1)
	defer func() { <-s.sem; s.queued.Add(-1) }()

	w := post(s, "/v1/schedule", corpusAsm(2), nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if n := s.Stats().Shed.Queue; n != 1 {
		t.Fatalf("shed.queue = %d, want 1", n)
	}
}

// TestQueuedDeadline holds the engine and sends a short-deadline
// request: it must come back 504 (expired while queued), never hang.
func TestQueuedDeadline(t *testing.T) {
	s := newTestServer(t, nil, nil)
	s.sem <- struct{}{}
	s.queued.Add(1)
	defer func() { <-s.sem; s.queued.Add(-1) }()

	w := post(s, "/v1/schedule?deadline_ms=5", corpusAsm(2), nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if n := s.Stats().DeadlineHits; n != 1 {
		t.Fatalf("deadline_hits = %d, want 1", n)
	}
}

// TestRateShed pins the global token bucket on a fake clock: burst
// admits, the next request sheds with a truthful Retry-After, and
// advancing the clock past the refill horizon admits again.
func TestRateShed(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newTestServer(t, nil, func(c *Config) {
		c.Rate, c.Burst = 1, 2
		c.now = func() time.Time { return now }
	})
	body := corpusAsm(2)
	for i := 0; i < 2; i++ {
		if w := post(s, "/v1/schedule", body, nil); w.Code != http.StatusOK {
			t.Fatalf("burst request %d: %d", i, w.Code)
		}
	}
	w := post(s, "/v1/schedule", body, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}
	now = now.Add(1100 * time.Millisecond)
	if w := post(s, "/v1/schedule", body, nil); w.Code != http.StatusOK {
		t.Fatalf("after refill: %d", w.Code)
	}
	if n := s.Stats().Shed.Rate; n != 1 {
		t.Fatalf("shed.rate = %d, want 1", n)
	}
}

// TestTenantShed pins per-tenant quotas: tenant A exhausting its
// bucket does not touch tenant B's.
func TestTenantShed(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newTestServer(t, nil, func(c *Config) {
		c.TenantRate, c.TenantBurst = 1, 1
		c.now = func() time.Time { return now }
	})
	body := corpusAsm(2)
	if w := post(s, "/v1/schedule", body, map[string]string{"X-Tenant": "a"}); w.Code != http.StatusOK {
		t.Fatalf("tenant a first: %d", w.Code)
	}
	if w := post(s, "/v1/schedule", body, map[string]string{"X-Tenant": "a"}); w.Code != http.StatusTooManyRequests {
		t.Fatalf("tenant a second: %d, want 429", w.Code)
	}
	if w := post(s, "/v1/schedule", body, map[string]string{"X-Tenant": "b"}); w.Code != http.StatusOK {
		t.Fatalf("tenant b: %d (a's exhaustion leaked)", w.Code)
	}
	snap := s.Stats()
	if snap.Shed.Tenant != 1 {
		t.Fatalf("shed.tenant = %d, want 1", snap.Shed.Tenant)
	}
	if tc := snap.Tenants["a"]; tc.Served != 1 || tc.Shed != 1 {
		t.Fatalf("tenant a counts = %+v, want served 1 shed 1", tc)
	}
}

// TestInflightBytesShed pins the byte budget: a body whose declared
// size cannot fit the in-flight cap sheds 429 before being read.
func TestInflightBytesShed(t *testing.T) {
	s := newTestServer(t, nil, func(c *Config) { c.MaxInflightBytes = 64 })
	body := corpusAsm(10) // well over 64 bytes
	w := post(s, "/v1/schedule", body, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if n := s.Stats().Shed.Bytes; n != 1 {
		t.Fatalf("shed.bytes = %d, want 1", n)
	}
}

// TestBodyTooLarge pins the 413: a body past MaxBody is refused.
func TestBodyTooLarge(t *testing.T) {
	s := newTestServer(t, nil, func(c *Config) { c.MaxBody = 128 })
	w := post(s, "/v1/schedule", corpusAsm(20), nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", w.Code, w.Body.String())
	}
}

// TestDeadlineDegradesToIdentity pins the deadline→ladder mapping: a
// fault plan stalling every block against a tiny BlockTimeout must
// still answer 200 — every block served, degraded down the ladder —
// instead of hanging or failing the request.
func TestDeadlineDegradesToIdentity(t *testing.T) {
	s := newTestServer(t, func(c *engine.Config) {
		c.BlockTimeout = time.Nanosecond
		c.FaultPlan = &fault.Plan{Seed: 7, SlowBlock: 1, SlowDelay: time.Millisecond}
	}, nil)
	resp := decodeSchedule(t, post(s, "/v1/schedule", corpusAsm(6), nil))
	degraded := 0
	for _, r := range resp.Results {
		if r.Rung != "primary" {
			degraded++
		}
		if len(r.Order) == 0 {
			t.Fatalf("degraded block %s served no schedule", r.Name)
		}
	}
	if degraded == 0 {
		t.Fatal("no block degraded; the stall plan injected nothing")
	}
	if s.Stats().Engine.DegradedBlocks == 0 {
		t.Fatal("stats did not count degraded blocks")
	}
}

// TestPanicIsolation pins the recover boundary: a panicking handler
// answers a one-line 500 and the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, nil, nil)
	h := s.guard(func(http.ResponseWriter, *http.Request) { panic("boom") })
	w := httptest.NewRecorder()
	h(w, httptest.NewRequest(http.MethodGet, "/v1/schedule", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if !strings.Contains(w.Body.String(), "boom") {
		t.Fatalf("500 body lost the diagnosis: %s", w.Body.String())
	}
	if n := s.Stats().Panics; n != 1 {
		t.Fatalf("panics = %d, want 1", n)
	}
	if w := post(s, "/v1/schedule", corpusAsm(2), nil); w.Code != http.StatusOK {
		t.Fatalf("request after panic: %d", w.Code)
	}
}

// TestDrain pins the shutdown protocol: readyz flips to 503 (healthz
// stays 200), new requests shed as drain, the report carries the
// tallies, and the engine is closed (flushed) exactly once.
func TestDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	s := newTestServer(t, func(c *engine.Config) { c.CachePath = path }, nil)
	if w := post(s, "/v1/schedule", corpusAsm(5), nil); w.Code != http.StatusOK {
		t.Fatalf("pre-drain request: %d", w.Code)
	}
	if w := get(s, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", w.Code)
	}

	rep := s.Drain(context.Background())
	if rep.Served != 1 || rep.Forced || rep.CloseErr != nil {
		t.Fatalf("drain report %+v", rep)
	}
	if w := get(s, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", w.Code)
	}
	if w := get(s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz after drain: %d, want 200", w.Code)
	}
	w := post(s, "/v1/schedule", corpusAsm(2), nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d, want 503", w.Code)
	}
	rep2 := s.Drain(context.Background())
	if rep2.CloseErr != nil {
		t.Fatalf("second drain: %v", rep2.CloseErr)
	}
	if rep2.Shed != 1 {
		t.Fatalf("second drain shed = %d, want 1", rep2.Shed)
	}
}

// TestWarmRestart is the crash-recovery story in miniature: a first
// server populates a cache file and drains (flushing it); a second
// server over the same file must serve byte-identical schedules with
// disk hits — the warm restart the daemon's CachePath buys.
func TestWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	body := corpusAsm(40)
	want := referenceOrders(t, body)

	s1 := newTestServer(t, func(c *engine.Config) { c.CachePath = path }, nil)
	resp1 := decodeSchedule(t, post(s1, "/v1/schedule", body, nil))
	requireOrders(t, resp1.Results, want)
	if rep := s1.Drain(context.Background()); rep.CloseErr != nil {
		t.Fatalf("drain: %v", rep.CloseErr)
	}

	s2 := newTestServer(t, func(c *engine.Config) { c.CachePath = path }, nil)
	resp2 := decodeSchedule(t, post(s2, "/v1/schedule", body, nil))
	requireOrders(t, resp2.Results, want)
	if resp2.DiskHits == 0 {
		t.Fatal("warm server served no disk hits; the restart was cold")
	}
	snap := s2.Stats()
	if snap.Engine.DiskHits != resp2.DiskHits {
		t.Fatalf("stats disk_hits %d != response %d", snap.Engine.DiskHits, resp2.DiskHits)
	}
	if rep := s2.Drain(context.Background()); rep.CloseErr != nil {
		t.Fatalf("second drain: %v", rep.CloseErr)
	}
}

// TestStreamMatchesBatch pins the streaming endpoint: NDJSON outcomes
// in arrival order, schedules byte-identical to the batch endpoint's,
// a done trailer with the stream's tallies.
func TestStreamMatchesBatch(t *testing.T) {
	s := newTestServer(t, nil, nil)
	body := corpusAsm(30)
	want := referenceOrders(t, body)

	w := post(s, "/v1/stream", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 31 { // 30 records + trailer
		t.Fatalf("%d NDJSON lines, want 31", len(lines))
	}
	for i, line := range lines[:30] {
		var rec streamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Seq != int64(i) {
			t.Fatalf("line %d: seq %d — outcomes must arrive in order", i, rec.Seq)
		}
		if rec.Name != fmt.Sprintf("b%d", i) {
			t.Fatalf("line %d: name %q", i, rec.Name)
		}
		if len(rec.Order) != len(want[i]) {
			t.Fatalf("line %d: order length %d, want %d", i, len(rec.Order), len(want[i]))
		}
		for k := range want[i] {
			if rec.Order[k] != want[i][k] {
				t.Fatalf("block %d position %d: node %d, want %d", i, k, rec.Order[k], want[i][k])
			}
		}
	}
	var tr streamTrailer
	if err := json.Unmarshal([]byte(lines[30]), &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Blocks != 30 {
		t.Fatalf("trailer %+v, want done with 30 blocks", tr)
	}
}

// TestStreamMidstreamMalformed pins the in-band error path: a body
// that goes malformed after valid blocks streams those blocks, then
// terminates with an error trailer — and the daemon serves the next
// request cleanly.
func TestStreamMidstreamMalformed(t *testing.T) {
	s := newTestServer(t, nil, nil)
	body := corpusAsm(3) + "bX:\n\tgenuinely not assembly here\n"
	w := post(s, "/v1/stream", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d (error arrived before any block?)", w.Code)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	var tr streamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Done || tr.Error == "" {
		t.Fatalf("trailer %+v, want an in-band error", tr)
	}
	if tr.Line == 0 {
		t.Fatalf("trailer lost the parse line: %+v", tr)
	}
	if w := post(s, "/v1/stream", corpusAsm(2), nil); w.Code != http.StatusOK {
		t.Fatalf("stream after malformed stream: %d", w.Code)
	}
	// A body malformed before the first block boundary is still a
	// clean 400: the status line has not been committed yet.
	if w := post(s, "/v1/stream", "\tnot even close\n", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("immediately-malformed stream: %d, want 400", w.Code)
	}
}

// TestStatsEndpoint pins that /stats is live JSON carrying the
// hardening counters the ops story depends on.
func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, nil, nil)
	if w := post(s, "/v1/schedule", corpusAsm(4), nil); w.Code != http.StatusOK {
		t.Fatalf("request: %d", w.Code)
	}
	w := get(s, "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Served != 1 || snap.Blocks != 4 {
		t.Fatalf("snapshot served=%d blocks=%d", snap.Served, snap.Blocks)
	}
	if snap.Rungs["primary"] != 4 {
		t.Fatalf("rung histogram %v, want 4 primary", snap.Rungs)
	}
	if snap.MaxQueue == 0 || snap.MaxInflightBytes == 0 {
		t.Fatal("snapshot lost its limits")
	}
}

// TestBucketMath pins the token bucket against hand-computed refills.
func TestBucketMath(t *testing.T) {
	b := newBucket(2, 4) // 2 tokens/s, burst 4
	now := time.Unix(0, 0)
	for i := 0; i < 4; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, retry := b.take(now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retry = %v, want 500ms (1 token at 2/s)", retry)
	}
	if ok, _ := b.take(now.Add(time.Second)); !ok {
		t.Fatal("refilled bucket refused")
	}
	var unlimited *bucket
	if ok, _ := unlimited.take(now); !ok {
		t.Fatal("nil bucket must admit")
	}
}

// TestTenantOverflow pins the bounded registry: past MaxTenants every
// new name shares the overflow tenant instead of growing the map.
func TestTenantOverflow(t *testing.T) {
	ts := newTenantSet(1, 1, 2)
	a, b := ts.get("a"), ts.get("b")
	c, d := ts.get("c"), ts.get("d")
	if a == b || a.name != "a" {
		t.Fatal("distinct tenants collapsed early")
	}
	if c != d || c.name != "overflow" {
		t.Fatal("overflow tenants must share one quota")
	}
	if got := ts.get("a"); got != a {
		t.Fatal("existing tenant lost its identity")
	}
}
