// Package server is the scheduling daemon's HTTP layer: it accepts
// textual assembly over POST — whole units on /v1/schedule, streamed
// block-by-block NDJSON on /v1/stream — and drives one shared
// engine.Engine, hardened for hostile conditions end to end:
//
//   - Admission control: a global token bucket plus bounded per-tenant
//     buckets (X-Tenant header) shed excess load with 429 and a
//     truthful Retry-After; a bounded engine queue sheds with 429 when
//     occupancy saturates; in-flight request bytes are accounted
//     against a hard cap.
//   - Deadlines: every request runs under a context deadline
//     (?deadline_ms= or X-Deadline-Ms, clamped to a maximum), mapped
//     onto Engine.RunCtx/RunStream cancellation; the engine's
//     Config.BlockTimeout independently bounds any single block, so an
//     overrun degrades to the ladder's identity rung instead of
//     hanging a worker.
//   - Fault isolation: every handler runs behind a recover boundary —
//     a panic becomes a one-line 500 and a tally, never a dead daemon.
//   - Error taxonomy: malformed assembly is the client's fault (400,
//     with the scanner's sticky line-numbered diagnosis), overload is
//     429/503, deadline overrun 504, engine faults 500 with the
//     daemon's rung histogram attached for triage.
//   - Lifecycle: /healthz is process liveness, /readyz flips to 503
//     the moment a drain starts, and Drain stops admission, waits out
//     in-flight requests, and flushes the persistent cache tier via
//     Engine.Close so the next process warm-starts from disk.
//
// The engine is not concurrency-safe across runs (workers share
// per-engine scratch), so the server serializes runs through a
// capacity-one semaphore channel; the queue behind it is the
// saturation signal admission control sheds on.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"daginsched/internal/asm"
	"daginsched/internal/block"
	"daginsched/internal/engine"
)

// Config configures a Server. The zero value of every limit picks a
// safe default; only Engine is required.
type Config struct {
	// Engine is the shared scheduling engine. Required. The server
	// owns its lifecycle from Serve through Drain: configure it with
	// KeepOrders (responses carry schedules) and, for warm restarts,
	// CachePath.
	Engine *engine.Engine
	// MaxQueue bounds engine-queue occupancy (the request being served
	// plus waiters); past it requests shed with 429. <= 0 means 8.
	MaxQueue int
	// MaxBody bounds one request body in bytes (413 past it).
	// <= 0 means 8 MiB.
	MaxBody int64
	// MaxInflightBytes bounds the sum of admitted request-body
	// reservations (429 past it). <= 0 means 64 MiB.
	MaxInflightBytes int64
	// Rate/Burst configure the global admission bucket in requests per
	// second; Rate <= 0 disables global rate limiting.
	Rate, Burst float64
	// TenantRate/TenantBurst configure each tenant's bucket;
	// TenantRate <= 0 disables per-tenant quotas.
	TenantRate, TenantBurst float64
	// MaxTenants bounds the distinct-tenant registry (past it new
	// names share one overflow quota). <= 0 means 1024.
	MaxTenants int
	// DefaultDeadline applies when a request names none; <= 0 means
	// 10s. MaxDeadline clamps what a request may ask for; <= 0 means
	// 60s.
	DefaultDeadline, MaxDeadline time.Duration

	// now is the admission clock, a test seam. Nil means time.Now.
	now func() time.Time
}

// TenantCounts is one tenant's row in the /stats snapshot.
type TenantCounts struct {
	Served int64 `json:"served"`
	Shed   int64 `json:"shed"`
}

// ShedCounts breaks refused requests down by which guard refused.
type ShedCounts struct {
	Queue  int64 `json:"queue"`  // engine queue saturated
	Rate   int64 `json:"rate"`   // global bucket empty
	Tenant int64 `json:"tenant"` // tenant bucket empty
	Bytes  int64 `json:"bytes"`  // in-flight byte cap
	Drain  int64 `json:"drain"`  // refused after drain began
}

// EngineCounts is the cumulative sum of engine.Stats hardening and
// cache tallies over every run the daemon has served.
type EngineCounts struct {
	CacheHits      int64 `json:"cache_hits"`
	DiskHits       int64 `json:"disk_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	Quarantines    int64 `json:"quarantines"`
	Demotions      int64 `json:"demotions"`
	GateFailures   int64 `json:"gate_failures"`
	FaultsInjected int64 `json:"faults_injected"`
	DegradedBlocks int64 `json:"degraded_blocks"`
}

// Snapshot is the /stats payload.
type Snapshot struct {
	Draining         bool                    `json:"draining"`
	QueueDepth       int64                   `json:"queue_depth"`
	MaxQueue         int                     `json:"max_queue"`
	InflightBytes    int64                   `json:"inflight_bytes"`
	MaxInflightBytes int64                   `json:"max_inflight_bytes"`
	Served           int64                   `json:"served"`
	Blocks           int64                   `json:"blocks"`
	Insts            int64                   `json:"insts"`
	Shed             ShedCounts              `json:"shed"`
	BadRequests      int64                   `json:"bad_requests"`
	DeadlineHits     int64                   `json:"deadline_hits"`
	Panics           int64                   `json:"panics"`
	EngineFailures   int64                   `json:"engine_failures"`
	Rungs            map[string]int64        `json:"rungs"`
	Engine           EngineCounts            `json:"engine"`
	Tenants          map[string]TenantCounts `json:"tenants,omitempty"`
}

// DrainReport summarizes one graceful drain.
type DrainReport struct {
	Served   int64 // requests served over the daemon's lifetime
	Shed     int64 // requests refused over the daemon's lifetime
	Forced   bool  // in-flight requests outlived the drain context
	CloseErr error // Engine.Close outcome (nil on a clean flush)
}

// String renders the one-line drain summary schedd logs.
func (d DrainReport) String() string {
	s := fmt.Sprintf("drained: served=%d shed=%d", d.Served, d.Shed)
	if d.Forced {
		s += " forced=true"
	}
	if d.CloseErr != nil {
		s += " close_err=" + strconv.Quote(d.CloseErr.Error())
	}
	return s
}

// Server is the daemon. Create with New, mount as an http.Handler,
// call Drain exactly once on the way out.
type Server struct {
	cfg     Config
	eng     *engine.Engine
	mux     *http.ServeMux
	global  *bucket
	tenants *tenantSet

	// sem is the capacity-one engine semaphore; queued counts the
	// holder plus waiters and is the saturation signal MaxQueue sheds
	// on.
	sem    chan struct{}
	queued atomic.Int64

	// reqMu guards the admission gate: whether the daemon is still
	// accepting work, and the in-flight byte reservation. wg tracks
	// admitted requests so Drain can wait them out.
	reqMu    sync.Mutex //sched:lock-rank 1
	draining bool       //sched:guarded-by reqMu
	inflight int64      //sched:guarded-by reqMu
	wg       sync.WaitGroup

	// Monotone tallies, all atomics so handlers never contend.
	served, blocks, insts                     atomic.Int64
	shedQueue, shedRate, shedTenant           atomic.Int64
	shedBytes, shedDrain                      atomic.Int64
	badRequests, deadlineHits, panics         atomic.Int64
	engineFailures                            atomic.Int64
	rungs                                     [engine.RungIdentity + 1]atomic.Int64
	cacheHits, diskHits, cacheMisses          atomic.Int64
	quarantines, demotions, gateFails, faults atomic.Int64
	degraded                                  atomic.Int64
}

// New validates cfg, fills its defaults, and builds the handler tree.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.MaxInflightBytes <= 0 {
		cfg.MaxInflightBytes = 64 << 20
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 1024
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 10 * time.Second
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 60 * time.Second
	}
	if cfg.Burst < cfg.Rate {
		cfg.Burst = cfg.Rate
	}
	if cfg.TenantBurst < cfg.TenantRate {
		cfg.TenantBurst = cfg.TenantRate
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		mux:     http.NewServeMux(),
		global:  newBucket(cfg.Rate, cfg.Burst),
		tenants: newTenantSet(cfg.TenantRate, cfg.TenantBurst, cfg.MaxTenants),
		sem:     make(chan struct{}, 1),
	}
	s.mux.HandleFunc("/v1/schedule", s.guard(s.handleSchedule))
	s.mux.HandleFunc("/v1/stream", s.guard(s.handleStream))
	s.mux.HandleFunc("/healthz", s.guard(s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.guard(s.handleReadyz))
	s.mux.HandleFunc("/stats", s.guard(s.handleStats))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// guard wraps h in the daemon's panic boundary: a panicking handler
// answers 500 with a one-line diagnostic and bumps a tally; the daemon
// lives on. The deferred-unlock discipline every server lock follows
// (enforced by the panicsafe lint pass over the handler roots) is what
// makes recovery safe — a recovered panic can never strand a held
// mutex.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer s.recoverPanic(w)
		h(w, r)
	}
}

// recoverPanic is the recover half of guard, deferred around every
// handler.
//
//sched:recover-boundary
func (s *Server) recoverPanic(w http.ResponseWriter) {
	if p := recover(); p != nil {
		s.panics.Add(1)
		s.jsonError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p), nil)
	}
}

// errorBody is the JSON shape of every non-2xx answer.
type errorBody struct {
	Error string           `json:"error"`
	Line  int              `json:"line,omitempty"`  // malformed-asm line number
	Rungs map[string]int64 `json:"rungs,omitempty"` // attached to 5xx engine faults
}

// jsonError writes one errorBody. extra, when non-nil, is mutated onto
// the body before encoding.
func (s *Server) jsonError(w http.ResponseWriter, status int, msg string, mutate func(*errorBody)) {
	b := errorBody{Error: msg}
	if mutate != nil {
		mutate(&b)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a flat struct cannot fail; the write may (client gone),
	// which is the client's problem.
	_ = json.NewEncoder(w).Encode(&b)
}

// rungHistogram snapshots the served-rung tallies.
func (s *Server) rungHistogram() map[string]int64 {
	h := make(map[string]int64, len(s.rungs))
	for i := range s.rungs {
		if n := s.rungs[i].Load(); n != 0 {
			h[engine.Rung(i).String()] = n
		}
	}
	return h
}

// admitRequest is the drain gate: it registers one in-flight request
// unless the daemon has stopped accepting. The wg.Add must happen
// under the same critical section as the draining check, or a request
// could slip in after Drain's final Wait observed zero.
func (s *Server) admitRequest() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.draining {
		return false
	}
	s.wg.Add(1)
	return true
}

// reserveBytes accounts n request bytes against the in-flight cap.
func (s *Server) reserveBytes(n int64) bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.inflight+n > s.cfg.MaxInflightBytes {
		return false
	}
	s.inflight += n
	return true
}

// releaseBytes returns a reserveBytes reservation.
func (s *Server) releaseBytes(n int64) {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	s.inflight -= n
}

// bodyReserve is the pessimistic size a request reserves before its
// body is read: the declared Content-Length when one is present and
// plausible, else the full per-request cap (chunked uploads of
// unknown size must assume the worst).
func (s *Server) bodyReserve(r *http.Request) int64 {
	if n := r.ContentLength; n >= 0 && n <= s.cfg.MaxBody {
		return n
	}
	return s.cfg.MaxBody
}

// requestCtx derives the per-request deadline context: the client's
// ?deadline_ms= (or X-Deadline-Ms header) clamped to MaxDeadline,
// DefaultDeadline when unstated, layered over the connection context
// so a vanished client cancels the run too.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	raw := r.URL.Query().Get("deadline_ms")
	if raw == "" {
		raw = r.Header.Get("X-Deadline-Ms")
	}
	if raw != "" {
		if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

// tenantFor resolves the request's quota scope from the X-Tenant
// header ("anon" when absent).
func (s *Server) tenantFor(r *http.Request) *tenant {
	name := strings.TrimSpace(r.Header.Get("X-Tenant"))
	if name == "" {
		name = "anon"
	}
	return s.tenants.get(name)
}

// shedRateLimited answers a bucket refusal: 429 with a truthful,
// ceiling-rounded Retry-After.
func (s *Server) shedRateLimited(w http.ResponseWriter, retry time.Duration, msg string) {
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.jsonError(w, http.StatusTooManyRequests, msg, nil)
}

// takeBuckets runs the global then tenant bucket in order, shedding
// with 429 on the first refusal. It reports whether the request may
// proceed.
func (s *Server) takeBuckets(w http.ResponseWriter, t *tenant) bool {
	now := s.cfg.now()
	if ok, retry := s.global.take(now); !ok {
		s.shedRate.Add(1)
		s.shedRateLimited(w, retry, "rate limit exceeded")
		return false
	}
	if ok, retry := t.tb.take(now); !ok {
		s.shedTenant.Add(1)
		t.shed.Add(1)
		s.shedRateLimited(w, retry, "tenant quota exceeded: "+t.name)
		return false
	}
	return true
}

// acquireEngine claims the engine semaphore, queueing behind at most
// MaxQueue occupants. It returns the release closure on success; on
// refusal it has already written the 429 (queue saturated) or 504
// (deadline expired while queued).
func (s *Server) acquireEngine(ctx context.Context, w http.ResponseWriter) (release func(), ok bool) {
	if n := s.queued.Add(1); n > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.shedQueue.Add(1)
		s.shedRateLimited(w, time.Second, "engine queue saturated")
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; s.queued.Add(-1) }, true
	case <-ctx.Done():
		s.queued.Add(-1)
		s.deadlineHits.Add(1)
		s.jsonError(w, http.StatusGatewayTimeout, "deadline expired while queued", nil)
		return nil, false
	}
}

// tallyRun folds one run's engine.Stats into the daemon's cumulative
// counters.
func (s *Server) tallyRun(st *engine.Stats) {
	s.cacheHits.Add(st.CacheHits)
	s.diskHits.Add(st.DiskHits)
	s.cacheMisses.Add(st.CacheMisses)
	s.quarantines.Add(st.Quarantines)
	s.demotions.Add(st.Demotions)
	s.gateFails.Add(st.GateFailures)
	s.faults.Add(st.FaultsInjected)
	s.degraded.Add(st.DegradedBlocks)
	s.blocks.Add(int64(st.Blocks))
	s.insts.Add(st.Insts)
}

// scanBlocks partitions an assembly body into basic blocks with the
// streaming scanner (same boundary rules as Parse+Partition, but the
// error is the scanner's sticky line-numbered one), polling ctx
// between blocks so a dead request stops burning the parser.
func scanBlocks(ctx context.Context, body []byte) ([]*block.Block, error) {
	sc := asm.NewBlockScanner(bytes.NewReader(body))
	var blocks []*block.Block
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := &block.Block{}
		ok, err := sc.Next(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			return blocks, nil
		}
		blocks = append(blocks, b)
	}
}

// blockResult is one block's row in the /v1/schedule response.
type blockResult struct {
	Name   string  `json:"name"`
	Cycles int32   `json:"cycles"`
	Arcs   int32   `json:"arcs"`
	Rung   string  `json:"rung"`
	Order  []int32 `json:"order,omitempty"`
}

// scheduleResponse is the /v1/schedule 200 payload.
type scheduleResponse struct {
	Blocks      int           `json:"blocks"`
	Insts       int64         `json:"insts"`
	TotalCycles int64         `json:"total_cycles"`
	CacheHits   int64         `json:"cache_hits"`
	DiskHits    int64         `json:"disk_hits"`
	Results     []blockResult `json:"results"`
}

// badAsm answers a scanner failure: a 400 carrying the sticky parse
// error's line when it has one.
func (s *Server) badAsm(w http.ResponseWriter, err error) {
	s.badRequests.Add(1)
	var pe *asm.ParseError
	line := 0
	if errors.As(err, &pe) {
		line = pe.Line
	}
	s.jsonError(w, http.StatusBadRequest, err.Error(), func(b *errorBody) { b.Line = line })
}

// runFailed classifies an engine error: the request's own deadline or
// disconnect is a 504 on the client, anything else is a 500 engine
// fault answered with the daemon's rung histogram for triage.
func (s *Server) runFailed(w http.ResponseWriter, ctx context.Context, err error) {
	if ctx.Err() != nil {
		s.deadlineHits.Add(1)
		s.jsonError(w, http.StatusGatewayTimeout, "deadline exceeded: "+ctx.Err().Error(), nil)
		return
	}
	s.engineFailures.Add(1)
	hist := s.rungHistogram()
	s.jsonError(w, http.StatusInternalServerError, "engine: "+err.Error(), func(b *errorBody) { b.Rungs = hist })
}

// handleSchedule is the batch endpoint: the whole body is one assembly
// unit, scheduled in one engine run, answered as JSON with every
// block's schedule.
//
//sched:cancellable
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.jsonError(w, http.StatusMethodNotAllowed, "POST only", nil)
		return
	}
	if !s.admitRequest() {
		s.shedDrain.Add(1)
		s.jsonError(w, http.StatusServiceUnavailable, "draining", nil)
		return
	}
	defer s.wg.Done()
	t := s.tenantFor(r)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.takeBuckets(w, t) {
		return
	}
	reserve := s.bodyReserve(r)
	if !s.reserveBytes(reserve) {
		s.shedBytes.Add(1)
		s.shedRateLimited(w, time.Second, "in-flight byte budget exhausted")
		return
	}
	defer s.releaseBytes(reserve)
	body, err := readBody(w, r, s.cfg.MaxBody)
	if err != nil {
		s.badRequests.Add(1)
		s.jsonError(w, http.StatusRequestEntityTooLarge, err.Error(), nil)
		return
	}
	blocks, err := scanBlocks(ctx, body)
	if err != nil {
		if ctx.Err() != nil {
			s.deadlineHits.Add(1)
			s.jsonError(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error(), nil)
			return
		}
		s.badAsm(w, err)
		return
	}
	if len(blocks) == 0 {
		s.badRequests.Add(1)
		s.jsonError(w, http.StatusBadRequest, "no basic blocks in request body", nil)
		return
	}

	release, ok := s.acquireEngine(ctx, w)
	if !ok {
		return
	}
	res, err := s.eng.RunCtx(ctx, blocks)
	release()
	if err != nil {
		s.runFailed(w, ctx, err)
		return
	}

	s.tallyRun(&res.Stats)
	resp := scheduleResponse{
		Blocks:      res.Stats.Blocks,
		Insts:       res.Stats.Insts,
		TotalCycles: res.Stats.TotalCycles,
		CacheHits:   res.Stats.CacheHits,
		DiskHits:    res.Stats.DiskHits,
		Results:     make([]blockResult, len(blocks)),
	}
	for i, b := range blocks {
		br := blockResult{Name: b.Name, Cycles: res.Cycles[i], Arcs: res.Arcs[i]}
		if len(res.Rungs) > i {
			br.Rung = res.Rungs[i].String()
			s.rungs[res.Rungs[i]].Add(1)
		} else {
			br.Rung = engine.RungPrimary.String()
			s.rungs[engine.RungPrimary].Add(1)
		}
		if len(res.Orders) > i {
			br.Order = res.Orders[i]
		}
		resp.Results[i] = br
	}
	s.served.Add(1)
	t.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}

// streamRecord is one block's NDJSON line on /v1/stream.
type streamRecord struct {
	Seq    int64   `json:"seq"`
	Name   string  `json:"name"`
	Cycles int32   `json:"cycles"`
	Arcs   int32   `json:"arcs"`
	Rung   string  `json:"rung"`
	Order  []int32 `json:"order,omitempty"`
}

// streamTrailer is the terminal NDJSON line: the stream's tallies,
// plus the scan error when the body went malformed mid-stream (the
// status line is long gone by then, so the taxonomy rides in-band).
type streamTrailer struct {
	Done     bool   `json:"done"`
	Blocks   int    `json:"blocks"`
	Insts    int64  `json:"insts"`
	Degraded int64  `json:"degraded"`
	Error    string `json:"error,omitempty"`
	Line     int    `json:"line,omitempty"`
}

// handleStream is the streaming endpoint: blocks are scheduled as the
// body arrives and answered one NDJSON line each, in arrival order,
// through Engine.RunStream's bounded pipeline — constant memory in the
// stream's length. The first block is scanned before the status line
// so a body that is malformed from the start still gets a clean 400;
// a mid-stream scan error terminates the stream with an in-band error
// trailer instead.
//
//sched:cancellable
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.jsonError(w, http.StatusMethodNotAllowed, "POST only", nil)
		return
	}
	if !s.admitRequest() {
		s.shedDrain.Add(1)
		s.jsonError(w, http.StatusServiceUnavailable, "draining", nil)
		return
	}
	defer s.wg.Done()
	t := s.tenantFor(r)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.takeBuckets(w, t) {
		return
	}
	reserve := s.bodyReserve(r)
	if !s.reserveBytes(reserve) {
		s.shedBytes.Add(1)
		s.shedRateLimited(w, time.Second, "in-flight byte budget exhausted")
		return
	}
	defer s.releaseBytes(reserve)

	sc := asm.NewBlockScanner(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	first := &block.Block{}
	ok, err := sc.Next(first)
	if err != nil {
		s.badAsm(w, err)
		return
	}
	if !ok {
		s.badRequests.Add(1)
		s.jsonError(w, http.StatusBadRequest, "no basic blocks in request body", nil)
		return
	}

	release, ok := s.acquireEngine(ctx, w)
	if !ok {
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	src := make(chan *block.Block)
	scanErrCh := make(chan error, 1)
	go s.produceBlocks(ctx, sc, first, src, scanErrCh)

	// The sink runs serially on RunStream's emitter goroutine, which
	// RunStream joins before returning — enc is never used from two
	// goroutines at once.
	sink := func(o engine.BlockOutcome) {
		s.rungs[o.Rung].Add(1)
		rec := streamRecord{Seq: o.Seq, Cycles: o.Cycles, Arcs: o.Arcs, Rung: o.Rung.String(), Order: o.Order}
		if o.Block != nil {
			rec.Name = o.Block.Name
		}
		_ = enc.Encode(&rec)
		if flusher != nil {
			flusher.Flush()
		}
	}
	st, runErr := s.eng.RunStream(ctx, src, sink)
	var scanErr error
	select {
	case scanErr = <-scanErrCh:
	default:
	}

	s.tallyRun(&st)
	trailer := streamTrailer{Done: true, Blocks: st.Blocks, Insts: st.Insts, Degraded: st.DegradedBlocks}
	switch {
	case scanErr != nil:
		s.badRequests.Add(1)
		trailer.Done = false
		trailer.Error = scanErr.Error()
		var pe *asm.ParseError
		if errors.As(scanErr, &pe) {
			trailer.Line = pe.Line
		}
	case runErr != nil:
		trailer.Done = false
		trailer.Error = runErr.Error()
		if ctx.Err() != nil {
			s.deadlineHits.Add(1)
		} else {
			s.engineFailures.Add(1)
		}
	default:
		s.served.Add(1)
		t.served.Add(1)
	}
	_ = enc.Encode(&trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

// produceBlocks feeds the scanner's remaining blocks (first leading)
// onto src for RunStream, closing src at end of body or on the scan
// error it parks in errCh. The send before close ordering is what
// lets the handler read errCh race-free after RunStream returns.
//
//sched:cancellable
func (s *Server) produceBlocks(ctx context.Context, sc *asm.BlockScanner, first *block.Block, src chan<- *block.Block, errCh chan<- error) {
	defer close(src)
	done := ctx.Done()
	select {
	case src <- first:
	case <-done:
		return
	}
	for {
		b := &block.Block{}
		ok, err := sc.Next(b)
		if err != nil {
			errCh <- err
			return
		}
		if !ok {
			return
		}
		select {
		case src <- b:
		case <-done:
			return
		}
	}
}

// handleHealthz is process liveness: a daemon that can answer at all
// answers 200, draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is admission readiness: 200 while accepting, 503 the
// moment a drain begins — the signal a load balancer keys on.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.reqMu.Lock()
	draining := s.draining
	s.reqMu.Unlock()
	if draining {
		s.jsonError(w, http.StatusServiceUnavailable, "draining", nil)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

// handleStats answers the full Snapshot.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&snap)
}

// Stats assembles the daemon's observable state.
func (s *Server) Stats() Snapshot {
	s.reqMu.Lock()
	draining, inflight := s.draining, s.inflight
	s.reqMu.Unlock()
	snap := Snapshot{
		Draining:         draining,
		QueueDepth:       s.queued.Load(),
		MaxQueue:         s.cfg.MaxQueue,
		InflightBytes:    inflight,
		MaxInflightBytes: s.cfg.MaxInflightBytes,
		Served:           s.served.Load(),
		Blocks:           s.blocks.Load(),
		Insts:            s.insts.Load(),
		Shed: ShedCounts{
			Queue:  s.shedQueue.Load(),
			Rate:   s.shedRate.Load(),
			Tenant: s.shedTenant.Load(),
			Bytes:  s.shedBytes.Load(),
			Drain:  s.shedDrain.Load(),
		},
		BadRequests:    s.badRequests.Load(),
		DeadlineHits:   s.deadlineHits.Load(),
		Panics:         s.panics.Load(),
		EngineFailures: s.engineFailures.Load(),
		Rungs:          s.rungHistogram(),
		Engine: EngineCounts{
			CacheHits:      s.cacheHits.Load(),
			DiskHits:       s.diskHits.Load(),
			CacheMisses:    s.cacheMisses.Load(),
			Quarantines:    s.quarantines.Load(),
			Demotions:      s.demotions.Load(),
			GateFailures:   s.gateFails.Load(),
			FaultsInjected: s.faults.Load(),
			DegradedBlocks: s.degraded.Load(),
		},
		Tenants: make(map[string]TenantCounts),
	}
	s.tenants.snapshot(snap.Tenants)
	return snap
}

// totalShed sums every shed class.
func (s *Server) totalShed() int64 {
	return s.shedQueue.Load() + s.shedRate.Load() + s.shedTenant.Load() +
		s.shedBytes.Load() + s.shedDrain.Load()
}

// Drain is the graceful-shutdown protocol: stop admission (readyz
// flips to 503 and new requests shed immediately), wait for every
// admitted request to finish — bounded by ctx; Forced reports an
// overrun — then flush and release the engine's persistent cache tier
// via Engine.Close so the next process warm-starts from a complete
// file. Idempotent: a second Drain finds admission already stopped and
// Close already a no-op.
func (s *Server) Drain(ctx context.Context) DrainReport {
	s.reqMu.Lock()
	s.draining = true
	s.reqMu.Unlock()

	rep := DrainReport{}
	waitDone := make(chan struct{})
	go func() { s.wg.Wait(); close(waitDone) }()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-waitDone:
	case <-ctx.Done():
		rep.Forced = true
	}
	rep.CloseErr = s.eng.Close()
	rep.Served = s.served.Load()
	rep.Shed = s.totalShed()
	return rep
}

// readBody reads the request body through the per-request size cap.
func readBody(w http.ResponseWriter, r *http.Request, maxBody int64) ([]byte, error) {
	lr := http.MaxBytesReader(w, r.Body, maxBody)
	defer lr.Close()
	return io.ReadAll(lr)
}
