// Package buf provides tiny zeroing-resize helpers for the reusable
// scratch buffers threaded through the scheduling hot paths. Each
// helper returns a slice of exactly n elements, all zero, reusing the
// argument's backing array when its capacity suffices — the pattern
// that keeps the steady-state per-block path of internal/engine
// allocation-free once every buffer has grown to the batch's largest
// block.
package buf

// Int32 returns a zeroed []int32 of length n, reusing s's capacity.
//
//sched:noalloc
func Int32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Int64 returns a zeroed []int64 of length n, reusing s's capacity.
//
//sched:noalloc
func Int64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Uint64 returns a zeroed []uint64 of length n, reusing s's capacity.
//
//sched:noalloc
func Uint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Bool returns a false-filled []bool of length n, reusing s's capacity.
//
//sched:noalloc
func Bool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
