package buf

import "testing"

func TestInt32ReusesCapacity(t *testing.T) {
	s := make([]int32, 8, 16)
	for i := range s {
		s[i] = 42
	}
	r := Int32(s, 12)
	if len(r) != 12 {
		t.Fatalf("len = %d, want 12", len(r))
	}
	if &r[0] != &s[:1][0] {
		t.Error("capacity not reused")
	}
	for i, v := range r {
		if v != 0 {
			t.Fatalf("r[%d] = %d, want 0", i, v)
		}
	}
	// Growing past capacity allocates fresh.
	r2 := Int32(r, 32)
	if len(r2) != 32 {
		t.Fatalf("len = %d, want 32", len(r2))
	}
	for i, v := range r2 {
		if v != 0 {
			t.Fatalf("r2[%d] = %d, want 0", i, v)
		}
	}
}

func TestInt64AndBool(t *testing.T) {
	i64 := Int64([]int64{9, 9, 9}, 2)
	if len(i64) != 2 || i64[0] != 0 || i64[1] != 0 {
		t.Errorf("Int64 = %v", i64)
	}
	b := Bool([]bool{true, true}, 2)
	if len(b) != 2 || b[0] || b[1] {
		t.Errorf("Bool = %v", b)
	}
	if got := Bool(nil, 3); len(got) != 3 {
		t.Errorf("Bool(nil,3) len = %d", len(got))
	}
}

func TestUint64(t *testing.T) {
	s := make([]uint64, 4, 8)
	for i := range s {
		s[i] = 7
	}
	r := Uint64(s, 6)
	if len(r) != 6 {
		t.Fatalf("len = %d, want 6", len(r))
	}
	if &r[0] != &s[:1][0] {
		t.Error("capacity not reused")
	}
	for i, v := range r {
		if v != 0 {
			t.Fatalf("r[%d] = %d, want 0", i, v)
		}
	}
	if got := Uint64(r, 32); len(got) != 32 {
		t.Errorf("grown len = %d, want 32", len(got))
	}
}

func TestZeroAllocOnReuse(t *testing.T) {
	s := make([]int32, 64)
	u := make([]uint64, 64)
	allocs := testing.AllocsPerRun(100, func() {
		s = Int32(s, 64)
		u = Uint64(u, 64)
	})
	if allocs != 0 {
		t.Errorf("Int32/Uint64 reuse allocates %.1f/op", allocs)
	}
}
