package machine

import "daginsched/internal/isa"

// StageUse is one row-segment of an instruction's reservation pattern:
// the instruction occupies one unit of class Unit from cycle Start
// (relative to issue) for Len cycles. The paper's Section 1 describes
// this style of scheduling: "an instruction is an aggregate structure
// represented by blocks of busy cycles for one or more function units,
// and scheduling involves pattern matching these blocks into a
// partially-filled reservation table".
type StageUse struct {
	Unit  isa.Class
	Start int
	Len   int
}

// Pattern returns op's reservation pattern under model m. The default
// pattern is derived from the model: one unit of the instruction's
// class, busy for UnitBusy cycles. Memory operations additionally hold
// an address-generation slot on the integer side for their first cycle,
// giving the "multiple resource usage" shape reservation tables exist
// for.
func (m *Model) Pattern(op isa.Opcode) []StageUse {
	c := op.Class()
	p := []StageUse{{Unit: c, Start: 0, Len: m.UnitBusy(op)}}
	if c == isa.ClassLoad || c == isa.ClassStore {
		p = append(p, StageUse{Unit: isa.ClassIU, Start: 0, Len: 1})
	}
	return p
}

// ResvUnits returns the number of units of class c available to the
// reservation table: the model's configured count, or 1 for classes
// with no explicit limit (a reservation table must bound every row).
func (m *Model) ResvUnits(c isa.Class) int {
	if n := m.Units[c]; n > 0 {
		return n
	}
	return 1
}
