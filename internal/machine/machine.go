// Package machine defines target machine models for instruction
// scheduling: operation latencies, per-dependence-kind arc delays, and
// function-unit structure.
//
// Arc delays implement every latency subtlety Section 2 of the paper
// calls out:
//
//   - WAR delays are short (typically 1 cycle) "because the parent
//     instruction reads (uses) the resource in an early pipe stage";
//   - from the same parent, different RAW delays occur to different
//     children: the odd half of a double-word load's destination pair is
//     available one cycle later (PairSkew);
//   - with asymmetric bypass/forwarding paths (the paper's IBM RS/6000
//     example) the RAW delay depends on which source-operand slot of the
//     child consumes the value (AsymBypass);
//   - an RAW delay to an arithmetic child "may be longer than an RAW
//     delay to a store operation" when store data is forwarded late
//     (StoreForward).
//
// Function units model the paper's structural hazards: non-pipelined FP
// units stay busy for an operation's full latency ("busy times for
// floating point function units" heuristic).
package machine

import "daginsched/internal/isa"

// Model describes one target machine.
type Model struct {
	// Name identifies the model in tables and CLI flags.
	Name string
	// IssueWidth is the number of instructions issued per cycle.
	IssueWidth int
	// WARDelay is the anti-dependence delay in cycles (usually 1). A
	// machine that must keep source registers readable for exception
	// repair (Section 2's caveat) sets a larger value.
	WARDelay int
	// PairSkew is the extra RAW delay, in cycles, to the odd register of
	// a double-word destination pair.
	PairSkew int
	// AsymBypass adds one cycle of RAW delay when the child consumes the
	// value in its second or later source-operand slot (RS/6000-like).
	AsymBypass bool
	// StoreForward shaves one cycle off the RAW delay when the child is
	// a store consuming the value as its data operand.
	StoreForward bool
	// NonPipelined marks classes whose function unit stays busy for the
	// operation's full latency.
	NonPipelined [isa.NumClasses]bool
	// Units is the number of function units per class; 0 means
	// unlimited (no structural hazard for that class).
	Units [isa.NumClasses]int

	lat [isa.NumOpcodes]int
}

// Latency returns the operation latency (execution time) of op — the
// paper's "execution time" heuristic.
func (m *Model) Latency(op isa.Opcode) int { return m.lat[op] }

// SetLatency overrides the latency of a single opcode. It returns m for
// chaining, so tests and examples can build variant machines tersely.
func (m *Model) SetLatency(op isa.Opcode, cycles int) *Model {
	m.lat[op] = cycles
	return m
}

// RAWDelay returns the true-dependence delay on an arc from parent
// (which defines def) to child (which consumes the value in operand
// slot useSlot). pairSecond indicates def is the odd half of a
// destination pair.
func (m *Model) RAWDelay(parent *isa.Inst, pairSecond bool, child *isa.Inst, useSlot uint8) int {
	d := m.lat[parent.Op]
	if pairSecond {
		d += m.PairSkew
	}
	if m.AsymBypass && useSlot > 0 {
		d++
	}
	if m.StoreForward && child.Op.IsStore() && useSlot == 0 {
		d-- // slot 0 of a store is its data operand
	}
	if d < 1 {
		d = 1
	}
	return d
}

// WARDelayFor returns the anti-dependence delay for an arc from a
// reader to a writer of the same resource.
func (m *Model) WARDelayFor(parent, child *isa.Inst) int {
	if m.WARDelay < 1 {
		return 1
	}
	return m.WARDelay
}

// WAWDelay returns the output-dependence delay: the child's write must
// land after the parent's, so the delay tracks the parent's latency.
func (m *Model) WAWDelay(parent, child *isa.Inst) int {
	d := m.lat[parent.Op] - m.lat[child.Op] + 1
	if d < 1 {
		d = 1
	}
	return d
}

// UnitBusy returns how long an instruction of class c occupies its
// function unit: full latency when the unit is not pipelined, one cycle
// otherwise.
func (m *Model) UnitBusy(op isa.Opcode) int {
	c := op.Class()
	if m.NonPipelined[c] {
		return m.lat[op]
	}
	return 1
}

// IssueGroup buckets classes into superscalar issue slots: 0 for the
// integer/memory/branch side, 1 for the floating-point side. A width-2
// machine can issue one instruction from each group per cycle (the
// "alternate type" heuristic tries to pair them up).
func IssueGroup(c isa.Class) int {
	if c.IsFP() {
		return 1
	}
	return 0
}

// baseLatencies is the default latency table shared by the presets. The
// FP numbers are chosen to match Figure 1 of the paper (DIVF = 20
// cycles, ADDF = 4 cycles) and loads have a one-cycle delay slot
// (latency 2), the paper's "interlock with child" example.
func baseLatencies() (l [isa.NumOpcodes]int) {
	for op := 0; op < isa.NumOpcodes; op++ {
		l[op] = 1
	}
	set := func(cycles int, ops ...isa.Opcode) {
		for _, op := range ops {
			l[op] = cycles
		}
	}
	set(2, isa.LD, isa.LDUB, isa.LDSB, isa.LDUH, isa.LDSH, isa.LDF)
	set(2, isa.LDD, isa.LDDF)
	set(5, isa.SMUL, isa.UMUL)
	set(18, isa.SDIV, isa.UDIV)
	set(4, isa.FADDS, isa.FADDD, isa.FSUBS, isa.FSUBD)
	set(3, isa.FMOVS, isa.FNEGS, isa.FABSS)
	set(4, isa.FITOS, isa.FITOD, isa.FSTOI, isa.FDTOI, isa.FSTOD, isa.FDTOS)
	set(6, isa.FMULS, isa.FMULD)
	set(20, isa.FDIVS, isa.FDIVD)
	set(22, isa.FSQRTS, isa.FSQRTD)
	set(2, isa.FCMPS, isa.FCMPD)
	return l
}

// Pipe1 is a simple single-issue pipelined RISC: every unit pipelined,
// WAR delay 1, pair skew 1. This is the default model for the paper's
// Tables 4 and 5 experiments.
func Pipe1() *Model {
	return &Model{
		Name:       "pipe1",
		IssueWidth: 1,
		WARDelay:   1,
		PairSkew:   1,
		lat:        baseLatencies(),
	}
}

// FPU is Pipe1 with non-pipelined floating-point units (one adder, one
// multiplier, one divider), the configuration that makes the "busy
// times for floating point function units" heuristic matter.
func FPU() *Model {
	m := Pipe1()
	m.Name = "fpu"
	m.NonPipelined[isa.ClassFPA] = true
	m.NonPipelined[isa.ClassFPM] = true
	m.NonPipelined[isa.ClassFPD] = true
	m.Units[isa.ClassFPA] = 1
	m.Units[isa.ClassFPM] = 1
	m.Units[isa.ClassFPD] = 1
	return m
}

// Asym is Pipe1 with RS/6000-like asymmetric bypass paths and late
// store-data forwarding, so RAW delays differ per child operand slot.
func Asym() *Model {
	m := Pipe1()
	m.Name = "asym"
	m.AsymBypass = true
	m.StoreForward = true
	return m
}

// Super2 is a two-issue superscalar: one integer-side and one FP-side
// instruction per cycle, the configuration that motivates the
// "alternate type" heuristic.
func Super2() *Model {
	m := Pipe1()
	m.Name = "super2"
	m.IssueWidth = 2
	return m
}

// Deep is Pipe1 with a deeper memory pipeline: loads take four cycles
// (three delay slots). The configuration where scheduling quality —
// and the paper's uncovering heuristics — matter most.
func Deep() *Model {
	m := Pipe1()
	m.Name = "deep"
	for _, op := range []isa.Opcode{
		isa.LD, isa.LDUB, isa.LDSB, isa.LDUH, isa.LDSH, isa.LDF, isa.LDD, isa.LDDF,
	} {
		m.SetLatency(op, 4)
	}
	return m
}

// ByName returns a preset model by name, for CLI flags.
func ByName(name string) (*Model, bool) {
	switch name {
	case "pipe1":
		return Pipe1(), true
	case "fpu":
		return FPU(), true
	case "asym":
		return Asym(), true
	case "super2":
		return Super2(), true
	case "deep":
		return Deep(), true
	}
	return nil, false
}
