package machine

import (
	"testing"

	"daginsched/internal/isa"
)

func TestFigure1Latencies(t *testing.T) {
	m := Pipe1()
	if m.Latency(isa.FDIVS) != 20 {
		t.Errorf("FDIVS latency = %d, want 20 (Figure 1's DIVF)", m.Latency(isa.FDIVS))
	}
	if m.Latency(isa.FADDS) != 4 {
		t.Errorf("FADDS latency = %d, want 4 (Figure 1's ADDF)", m.Latency(isa.FADDS))
	}
	if m.Latency(isa.ADD) != 1 {
		t.Errorf("ADD latency = %d, want 1", m.Latency(isa.ADD))
	}
	if m.Latency(isa.LD) != 2 {
		t.Errorf("LD latency = %d, want 2 (one delay slot)", m.Latency(isa.LD))
	}
}

func TestWARDelayIsShort(t *testing.T) {
	m := Pipe1()
	div := isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3))
	add := isa.Fp3(isa.FADDS, isa.F(4), isa.F(5), isa.F(1))
	if got := m.WARDelayFor(&div, &add); got != 1 {
		t.Errorf("WAR delay = %d, want 1", got)
	}
}

func TestRAWDelayBasic(t *testing.T) {
	m := Pipe1()
	div := isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3))
	add := isa.Fp3(isa.FADDS, isa.F(3), isa.F(5), isa.F(6))
	if got := m.RAWDelay(&div, false, &add, 0); got != 20 {
		t.Errorf("RAW delay = %d, want 20", got)
	}
}

func TestRAWDelayPairSkew(t *testing.T) {
	m := Pipe1()
	ldd := isa.Load(isa.LDDF, isa.FP, -16, isa.F(2))
	use := isa.Fp3(isa.FADDS, isa.F(3), isa.F(4), isa.F(5))
	even := m.RAWDelay(&ldd, false, &use, 0)
	odd := m.RAWDelay(&ldd, true, &use, 0)
	if odd != even+1 {
		t.Errorf("pair skew: even %d, odd %d; want odd = even+1", even, odd)
	}
}

func TestRAWDelayAsymBypass(t *testing.T) {
	m := Asym()
	ld := isa.Load(isa.LDF, isa.FP, -4, isa.F(1))
	use := isa.Fp3(isa.FADDS, isa.F(1), isa.F(2), isa.F(3))
	slot0 := m.RAWDelay(&ld, false, &use, 0)
	slot1 := m.RAWDelay(&ld, false, &use, 1)
	if slot1 != slot0+1 {
		t.Errorf("asym bypass: slot0 %d, slot1 %d; want slot1 = slot0+1", slot0, slot1)
	}
	// Pipe1 has symmetric bypass.
	p := Pipe1()
	if p.RAWDelay(&ld, false, &use, 0) != p.RAWDelay(&ld, false, &use, 1) {
		t.Error("pipe1 should have symmetric RAW delays")
	}
}

func TestRAWDelayStoreForward(t *testing.T) {
	m := Asym()
	ld := isa.Load(isa.LD, isa.FP, -4, isa.O0)
	st := isa.Store(isa.ST, isa.O0, isa.FP, -8)
	add := isa.RRR(isa.ADD, isa.O0, isa.O1, isa.O2)
	toStore := m.RAWDelay(&ld, false, &st, 0)
	toALU := m.RAWDelay(&ld, false, &add, 0)
	if toStore >= toALU {
		t.Errorf("RAW to store (%d) should be shorter than to ALU (%d)", toStore, toALU)
	}
}

func TestRAWDelayNeverBelowOne(t *testing.T) {
	m := Asym()
	mov := isa.MovI(1, isa.O0)
	st := isa.Store(isa.ST, isa.O0, isa.FP, -8)
	if got := m.RAWDelay(&mov, false, &st, 0); got != 1 {
		t.Errorf("RAW delay clamped to %d, want 1", got)
	}
}

func TestWAWDelay(t *testing.T) {
	m := Pipe1()
	div := isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3))
	mov := isa.Fp2(isa.FMOVS, isa.F(4), isa.F(3))
	// mov (3 cycles) after div (20 cycles): must wait 20-3+1 = 18.
	if got := m.WAWDelay(&div, &mov); got != 18 {
		t.Errorf("WAW delay = %d, want 18", got)
	}
	// Reverse order: short op then long op never needs extra delay.
	if got := m.WAWDelay(&mov, &div); got != 1 {
		t.Errorf("WAW delay = %d, want 1", got)
	}
}

func TestUnitBusy(t *testing.T) {
	p, f := Pipe1(), FPU()
	div := isa.FDIVD
	if p.UnitBusy(div) != 1 {
		t.Errorf("pipelined unit busy = %d, want 1", p.UnitBusy(div))
	}
	if f.UnitBusy(div) != f.Latency(div) {
		t.Errorf("non-pipelined unit busy = %d, want %d", f.UnitBusy(div), f.Latency(div))
	}
	if f.UnitBusy(isa.ADD) != 1 {
		t.Error("integer unit should stay pipelined on fpu model")
	}
}

func TestIssueGroups(t *testing.T) {
	if IssueGroup(isa.ClassIU) != 0 || IssueGroup(isa.ClassLoad) != 0 ||
		IssueGroup(isa.ClassBranch) != 0 {
		t.Error("integer-side classes should be group 0")
	}
	if IssueGroup(isa.ClassFPA) != 1 || IssueGroup(isa.ClassFPD) != 1 {
		t.Error("FP classes should be group 1")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pipe1", "fpu", "asym", "super2"} {
		m, ok := ByName(name)
		if !ok || m.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("cray1"); ok {
		t.Error("unknown model resolved")
	}
}

func TestSetLatencyChains(t *testing.T) {
	m := Pipe1().SetLatency(isa.ADD, 3)
	if m.Latency(isa.ADD) != 3 {
		t.Error("SetLatency did not stick")
	}
}

func TestSuper2Width(t *testing.T) {
	if Super2().IssueWidth != 2 || Pipe1().IssueWidth != 1 {
		t.Error("issue widths wrong")
	}
}

func TestEveryOpcodeHasSaneLatency(t *testing.T) {
	for _, m := range []*Model{Pipe1(), FPU(), Asym(), Super2()} {
		for op := 0; op < isa.NumOpcodes; op++ {
			if l := m.Latency(isa.Opcode(op)); l < 1 || l > 64 {
				t.Errorf("%s: %v latency %d out of range", m.Name, isa.Opcode(op), l)
			}
			if b := m.UnitBusy(isa.Opcode(op)); b < 1 {
				t.Errorf("%s: %v unit busy %d", m.Name, isa.Opcode(op), b)
			}
		}
	}
}

func TestEveryOpcodeHasAPattern(t *testing.T) {
	m := FPU()
	for op := 0; op < isa.NumOpcodes; op++ {
		p := m.Pattern(isa.Opcode(op))
		if len(p) == 0 {
			t.Fatalf("%v has no reservation pattern", isa.Opcode(op))
		}
		for _, st := range p {
			if st.Len < 1 || st.Start < 0 {
				t.Errorf("%v stage %+v malformed", isa.Opcode(op), st)
			}
			if m.ResvUnits(st.Unit) < 1 {
				t.Errorf("%v uses unit class %v with no units", isa.Opcode(op), st.Unit)
			}
		}
	}
	// Memory operations hold an extra integer (address-generation) slot.
	if len(m.Pattern(isa.LD)) != 2 || len(m.Pattern(isa.ADD)) != 1 {
		t.Error("load/ALU pattern shapes wrong")
	}
}
