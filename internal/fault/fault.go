// Package fault is the engine's deterministic fault-injection harness.
// Production-scale serving needs the failure side of the paper's "no
// instruction window" result: blocks of unbounded size reach the hot
// path, so the engine wraps every per-block pipeline in a recover
// boundary and a degradation ladder — and this package is how that
// machinery is proven to work. A Plan names a seed and a per-point
// injection rate; an Injector compiled from it answers, purely as a
// function of (seed, point, block fingerprint), whether a given block
// is faulted at a given point. Because the decision depends only on
// block *content*, the faulted set is identical across worker counts,
// interleavings and repeated runs — which is what lets the chaos gate
// demand byte-identical results for every non-faulted block.
//
// All injection methods are nil-receiver-safe no-ops, so an engine
// without a Config.FaultPlan carries a single nil check per point and
// nothing else.
package fault

import (
	"fmt"
	"time"

	"daginsched/internal/dag"
)

// Point names one injection site inside the engine's per-block
// pipeline.
type Point uint8

const (
	// PanicBuilder panics at the end of DAG construction, leaving the
	// worker's arena holding a built-but-unscheduled DAG — the
	// mid-pipeline state the quarantine must be able to discard.
	PanicBuilder Point = iota
	// CorruptArc overwrites the delay of one deterministically chosen
	// predecessor-mirror arc after construction, desynchronizing the
	// mirrors the legality gate cross-checks — a silent-miscompile
	// stand-in the gate must catch.
	CorruptArc
	// CacheBitflip flips one bit in the scheduled order copied out of a
	// schedule-cache hit, modeling a poisoned or decayed cache entry.
	CacheBitflip
	// SlowBlock stalls the primary pipeline attempt, modeling a
	// pathological block; with a Config.BlockTimeout set, the stall
	// trips the soft deadline and demotes the block.
	SlowBlock
	// NumPoints is the number of injection points.
	NumPoints
)

// String names the point for diagnostics.
func (p Point) String() string {
	switch p {
	case PanicBuilder:
		return "panic-builder"
	case CorruptArc:
		return "corrupt-arc"
	case CacheBitflip:
		return "cache-bitflip"
	case SlowBlock:
		return "slow-block"
	}
	return "unknown"
}

// Plan configures deterministic fault injection. Each rate is the
// expected fraction of distinct blocks faulted at that point, in
// [0, 1]; a zero Plan (or a nil one) injects nothing.
type Plan struct {
	// Seed drives every injection decision. Two runs with the same
	// seed, rates and corpus fault exactly the same blocks.
	Seed uint64
	// PanicBuilder, CorruptArc, CacheBitflip and SlowBlock are the
	// per-point injection rates.
	PanicBuilder float64
	CorruptArc   float64
	CacheBitflip float64
	SlowBlock    float64
	// SlowDelay is how long a SlowBlock stall runs before giving up
	// (soft deadlines cut it short); <= 0 means 2ms.
	SlowDelay time.Duration
}

// defaultSlowDelay is the stall length when Plan.SlowDelay is unset.
const defaultSlowDelay = 2 * time.Millisecond

// rates returns the per-point rate array.
func (p *Plan) rates() [NumPoints]float64 {
	return [NumPoints]float64{p.PanicBuilder, p.CorruptArc, p.CacheBitflip, p.SlowBlock}
}

// Validate reports whether the plan's rates and delay are sensible.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for pt, r := range p.rates() {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0, 1]", Point(pt), r)
		}
	}
	if p.SlowDelay < 0 {
		return fmt.Errorf("fault: negative SlowDelay %v", p.SlowDelay)
	}
	return nil
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	for _, r := range p.rates() {
		if r > 0 {
			return true
		}
	}
	return false
}

// Injector is a Plan compiled to threshold form. The zero of the type
// is never used: a nil *Injector is the disabled state, and every
// method is a nil-safe no-op.
type Injector struct {
	seed   uint64
	thresh [NumPoints]uint64
	slow   time.Duration
}

// NewInjector compiles p. It returns (nil, nil) — injection disabled —
// when p is nil or injects nothing, and an error when p is invalid.
func NewInjector(p *Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	in := &Injector{seed: p.Seed, slow: p.SlowDelay}
	if in.slow <= 0 {
		in.slow = defaultSlowDelay
	}
	for pt, r := range p.rates() {
		switch {
		case r >= 1:
			in.thresh[pt] = ^uint64(0)
		case r > 0:
			in.thresh[pt] = uint64(r * float64(1<<63) * 2)
		}
	}
	return in, nil
}

// mix is SplitMix64 over the (seed, point, key) triple — a cheap,
// well-distributed pure hash, so each point draws an independent
// deterministic coin per block fingerprint.
func mix(seed uint64, pt Point, key uint64) uint64 {
	z := seed ^ (key * 0x9e3779b97f4a7c15) ^ (uint64(pt+1) * 0xbf58476d1ce4e5b9)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Should reports whether the block with content fingerprint key is
// faulted at point pt. Pure and deterministic; nil-safe.
func (in *Injector) Should(pt Point, key uint64) bool {
	if in == nil {
		return false
	}
	t := in.thresh[pt]
	if t == 0 {
		return false
	}
	return t == ^uint64(0) || mix(in.seed, pt, key) < t
}

// Any reports whether any injection point fires for key — the
// "faulted block" predicate the chaos gate uses to decide which
// blocks must stay byte-identical to a fault-free run.
func (in *Injector) Any(key uint64) bool {
	for pt := Point(0); pt < NumPoints; pt++ {
		if in.Should(pt, key) {
			return true
		}
	}
	return false
}

// stallSlice bounds one sleep so a stalled worker re-checks its soft
// deadline cooperatively instead of oversleeping it.
const stallSlice = 200 * time.Microsecond

// Stall runs the SlowBlock stall: it sleeps in short slices until the
// plan's SlowDelay is consumed or the soft deadline passes, and
// reports whether the deadline expired (the caller then demotes the
// block instead of finishing the stalled attempt). A zero deadline
// means no deadline: the stall runs to completion and returns false.
func (in *Injector) Stall(deadline time.Time) bool {
	if in == nil {
		return false
	}
	end := time.Now().Add(in.slow)
	for {
		now := time.Now()
		if !deadline.IsZero() && now.After(deadline) {
			return true
		}
		if !now.Before(end) {
			return false
		}
		d := end.Sub(now)
		if d > stallSlice {
			d = stallSlice
		}
		time.Sleep(d)
	}
}

// CorruptPredArc overwrites the delay of one deterministically chosen
// arc in d's predecessor mirror (the successor mirror keeps the true
// delay), reporting whether anything was corrupted. The scheduler
// derives timing from successor arcs, so the schedule itself is
// computed against the true delays — the corruption is only visible
// to a consumer that checks the predecessor side, which is exactly
// what the engine's legality gate does. The bump is large enough
// (2^20 cycles) that no legitimate schedule can satisfy it.
func (in *Injector) CorruptPredArc(d *dag.DAG, key uint64) bool {
	if in == nil || d == nil || d.NumArcs == 0 {
		return false
	}
	k := int(mix(in.seed, NumPoints+1, key) % uint64(d.NumArcs))
	for i := range d.Nodes {
		preds := d.Nodes[i].Preds
		if k < len(preds) {
			preds[k].Delay += 1 << 20
			return true
		}
		k -= len(preds)
	}
	return false
}

// InjectedPanic is the value PanicBuilder panics with, so a recover
// boundary can tell an injected panic from a genuine bug when
// reporting.
type InjectedPanic struct {
	Point Point
	Key   uint64
}

// Error renders the panic value.
func (p InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected %s (block key %#x)", p.Point, p.Key)
}

// FlipBit flips one deterministically chosen bit in one element of
// order (a scheduled-order copy), reporting whether a flip happened
// (false for an empty order). The flipped element no longer names its
// node, so an exactly-once permutation check always catches it.
func (in *Injector) FlipBit(order []int32, key uint64) bool {
	if in == nil || len(order) == 0 {
		return false
	}
	h := mix(in.seed, NumPoints+2, key)
	elem := int(h % uint64(len(order)))
	bit := uint((h >> 32) % 31)
	order[elem] ^= 1 << bit
	return true
}
