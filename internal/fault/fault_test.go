package fault

import (
	"strings"
	"testing"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		ok   bool
	}{
		{"nil plan", nil, true},
		{"zero plan", &Plan{}, true},
		{"all rates set", &Plan{Seed: 1, PanicBuilder: 0.5, CorruptArc: 1, CacheBitflip: 0.01, SlowBlock: 0.99}, true},
		{"negative rate", &Plan{CorruptArc: -0.1}, false},
		{"rate above one", &Plan{CacheBitflip: 1.5}, false},
		{"negative slow delay", &Plan{SlowBlock: 0.1, SlowDelay: -time.Millisecond}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
			if _, err := NewInjector(tc.plan); (err == nil) != tc.ok {
				t.Fatalf("NewInjector error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// TestNilInjectorNoOps pins the disabled state: a nil or inert plan
// compiles to a nil *Injector, and every method on a nil Injector is a
// safe no-op — that is the entire fault-free overhead contract.
func TestNilInjectorNoOps(t *testing.T) {
	for _, p := range []*Plan{nil, {}, {Seed: 99}} {
		in, err := NewInjector(p)
		if err != nil {
			t.Fatalf("NewInjector(%+v): %v", p, err)
		}
		if in != nil {
			t.Fatalf("NewInjector(%+v) = %+v, want nil (disabled)", p, in)
		}
	}
	var in *Injector
	if in.Should(PanicBuilder, 7) || in.Any(7) {
		t.Fatal("nil injector fired")
	}
	if in.Stall(time.Now().Add(-time.Second)) {
		t.Fatal("nil injector reported a deadline expiry")
	}
	if in.CorruptPredArc(nil, 7) {
		t.Fatal("nil injector corrupted an arc")
	}
	if in.FlipBit([]int32{1, 2, 3}, 7) {
		t.Fatal("nil injector flipped a bit")
	}
}

// TestInjectorDeterministic is the property the chaos gate rests on:
// two injectors compiled from the same plan make identical decisions,
// for every point, across any set of keys.
func TestInjectorDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, PanicBuilder: 0.3, CorruptArc: 0.05, CacheBitflip: 0.5, SlowBlock: 0.001}
	a, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 4096; key++ {
		for pt := Point(0); pt < NumPoints; pt++ {
			if a.Should(pt, key) != b.Should(pt, key) {
				t.Fatalf("point %v key %d: decision differs between identical injectors", pt, key)
			}
		}
		if a.Any(key) != b.Any(key) {
			t.Fatalf("key %d: Any differs between identical injectors", key)
		}
	}
}

// TestInjectorRates checks the threshold compilation: rate 0 never
// fires, rate 1 always fires, and a fractional rate hits roughly its
// share of distinct keys.
func TestInjectorRates(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 7, PanicBuilder: 0.25, CorruptArc: 1})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10000
	hits := 0
	for key := uint64(0); key < keys; key++ {
		if in.Should(PanicBuilder, key) {
			hits++
		}
		if !in.Should(CorruptArc, key) {
			t.Fatalf("key %d: rate-1 point did not fire", key)
		}
		if in.Should(CacheBitflip, key) || in.Should(SlowBlock, key) {
			t.Fatalf("key %d: rate-0 point fired", key)
		}
	}
	if hits < keys/5 || hits > 3*keys/10 {
		t.Fatalf("rate 0.25 fired on %d/%d keys, want roughly a quarter", hits, keys)
	}
}

// TestInjectorPointsIndependent checks the points draw independent
// coins: with equal rates, the panic set and the bitflip set must not
// coincide.
func TestInjectorPointsIndependent(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 3, PanicBuilder: 0.5, CacheBitflip: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	const keys = 4096
	for key := uint64(0); key < keys; key++ {
		if in.Should(PanicBuilder, key) == in.Should(CacheBitflip, key) {
			same++
		}
	}
	if same == keys {
		t.Fatal("points are perfectly correlated; they must draw independent coins")
	}
}

func TestStall(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 1, SlowBlock: 1, SlowDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Stall(time.Now().Add(-time.Second)) {
		t.Fatal("Stall with an expired deadline must report expiry")
	}
	t0 := time.Now()
	if in.Stall(time.Time{}) {
		t.Fatal("Stall with no deadline must run to completion and report false")
	}
	if elapsed := time.Since(t0); elapsed < time.Millisecond/2 {
		t.Fatalf("deadline-free stall returned after %v, want about the 1ms SlowDelay", elapsed)
	}
	if in.Stall(time.Now().Add(time.Minute)) {
		t.Fatal("Stall must not report expiry when the deadline is far out")
	}
}

// buildDAG builds a real table DAG for the corruption test.
func buildDAG(t *testing.T, seed int64, n int) *dag.DAG {
	t.Helper()
	b := &block.Block{Name: "fault", Insts: testgen.Block(seed, n)}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	return dag.TableBackward{}.Build(b, machine.Super2(), rt)
}

// TestCorruptPredArc checks the corruption is surgical: exactly one
// predecessor-mirror arc gains the 2^20 delay bump, the successor
// mirror keeps every true delay, and the choice is deterministic.
func TestCorruptPredArc(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 11, CorruptArc: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := buildDAG(t, 101, 60)
	if d.NumArcs == 0 {
		t.Fatal("test DAG has no arcs")
	}
	sumSucc := func() (s int64) {
		for i := range d.Nodes {
			for _, a := range d.Nodes[i].Succs {
				s += int64(a.Delay)
			}
		}
		return s
	}
	sumPred := func() (s int64) {
		for i := range d.Nodes {
			for _, a := range d.Nodes[i].Preds {
				s += int64(a.Delay)
			}
		}
		return s
	}
	succBefore, predBefore := sumSucc(), sumPred()
	if succBefore != predBefore {
		t.Fatalf("mirrors disagree before corruption: succ %d, pred %d", succBefore, predBefore)
	}
	const key = 0xfeed
	if !in.CorruptPredArc(d, key) {
		t.Fatal("CorruptPredArc reported nothing corrupted")
	}
	if got := sumSucc(); got != succBefore {
		t.Fatalf("successor mirror changed: delay sum %d, want %d", got, succBefore)
	}
	if got := sumPred(); got != predBefore+(1<<20) {
		t.Fatalf("pred delay sum %d, want exactly one 2^20 bump over %d", got, predBefore)
	}

	// Deterministic: the same injector corrupts the same arc of an
	// identically built DAG.
	d2 := buildDAG(t, 101, 60)
	in.CorruptPredArc(d2, key)
	for i := range d.Nodes {
		for k, a := range d.Nodes[i].Preds {
			if a.Delay != d2.Nodes[i].Preds[k].Delay {
				t.Fatalf("node %d pred %d: corruption not deterministic (%d vs %d)",
					i, k, a.Delay, d2.Nodes[i].Preds[k].Delay)
			}
		}
	}

	if in.CorruptPredArc(nil, key) {
		t.Fatal("CorruptPredArc on a nil DAG must be a no-op")
	}
	empty := &dag.DAG{}
	if in.CorruptPredArc(empty, key) {
		t.Fatal("CorruptPredArc on an arcless DAG must be a no-op")
	}
}

// TestFlipBit checks the bitflip poisons exactly one element by one
// bit, deterministically per key.
func TestFlipBit(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 5, CacheBitflip: 1})
	if err != nil {
		t.Fatal(err)
	}
	if in.FlipBit(nil, 1) {
		t.Fatal("FlipBit on an empty order must report false")
	}
	const n = 33
	orig := make([]int32, n)
	for i := range orig {
		orig[i] = int32(i)
	}
	for key := uint64(0); key < 64; key++ {
		got := append([]int32(nil), orig...)
		if !in.FlipBit(got, key) {
			t.Fatalf("key %d: FlipBit did not fire", key)
		}
		diffs := 0
		for i := range got {
			if got[i] != orig[i] {
				diffs++
				x := got[i] ^ orig[i]
				if x&(x-1) != 0 {
					t.Fatalf("key %d elem %d: %d -> %d is not a single-bit flip", key, i, orig[i], got[i])
				}
			}
		}
		if diffs != 1 {
			t.Fatalf("key %d: %d elements changed, want exactly 1", key, diffs)
		}
		again := append([]int32(nil), orig...)
		in.FlipBit(again, key)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("key %d: flip not deterministic", key)
			}
		}
	}
}

func TestPointStringAndPanicValue(t *testing.T) {
	names := map[Point]string{
		PanicBuilder: "panic-builder",
		CorruptArc:   "corrupt-arc",
		CacheBitflip: "cache-bitflip",
		SlowBlock:    "slow-block",
	}
	for pt, want := range names {
		if pt.String() != want {
			t.Fatalf("Point(%d).String() = %q, want %q", pt, pt.String(), want)
		}
	}
	if Point(200).String() != "unknown" {
		t.Fatalf("out-of-range point string = %q", Point(200).String())
	}
	msg := InjectedPanic{Point: PanicBuilder, Key: 0xbeef}.Error()
	if !strings.Contains(msg, "panic-builder") || !strings.Contains(msg, "0xbeef") {
		t.Fatalf("InjectedPanic message %q missing point or key", msg)
	}
}
