// Package resource interns the schedulable resources of a basic block —
// integer and FP registers, condition codes, the %y register, and
// symbolic memory expressions — into a dense ID space.
//
// The ID space is exactly the paper's "variable-length bit map ... used
// to represent resource use and definition"; register resources occupy
// a fixed prefix and memory expressions are appended lazily in first-
// encounter order, so the table grows "whenever a new memory address
// expression is encountered" (Section 6). Because forward- and
// backward-pass DAG construction encounter expressions in opposite
// orders, the growth profile differs between them — that is the
// mechanism behind the paper's fpppp forward-vs-backward anomaly.
//
// Memory disambiguation follows Section 2:
//
//   - MemExprModel (default, what the paper's implementation used): each
//     unique symbolic expression (base register + offset, or static
//     symbol + offset) is its own resource. Two references with the same
//     base but different offsets therefore never conflict. References
//     that cannot be disambiguated — register-indexed addresses, or a
//     base register that is redefined inside the block — collapse their
//     whole storage class to a single serializing resource.
//   - MemClassModel: one resource per storage class (stack / static /
//     heap). This is Warren's observation that storage classes do not
//     overlap, with no finer analysis.
//   - MemSingleModel: memory is one resource; all loads and stores are
//     serialized ("The DAG construction algorithm may have to treat
//     memory as a single resource").
package resource

import (
	"daginsched/internal/isa"
)

// ID is a dense resource identifier. Register resources have fixed IDs
// equal to their isa.Reg value; memory resources follow.
type ID int32

// None marks the absence of a resource.
const None ID = -1

// NumFixed is the number of fixed (register) resource IDs: integer
// registers 0..31, FP registers 32..63, %icc, %fcc, %y.
const NumFixed = 67

// MemModel selects the memory-disambiguation policy.
type MemModel uint8

const (
	// MemExprModel gives each unique symbolic memory expression its own
	// resource (the paper's implementation; Table 3's last column counts
	// these).
	MemExprModel MemModel = iota
	// MemClassModel gives each storage class one resource.
	MemClassModel
	// MemSingleModel serializes all memory references on one resource.
	MemSingleModel
)

// String returns the model name.
func (m MemModel) String() string {
	switch m {
	case MemExprModel:
		return "expr"
	case MemClassModel:
		return "class"
	case MemSingleModel:
		return "single"
	}
	return "model?"
}

// StorageClass partitions memory per Warren's observation (Section 2):
// distinct classes cannot overlap.
type StorageClass uint8

const (
	// StackClass is frame storage addressed off %sp or %fp.
	StackClass StorageClass = iota
	// StaticClass is storage addressed by a symbol.
	StaticClass
	// HeapClass is everything else (pointer-based references).
	HeapClass

	numStorageClasses = int(HeapClass) + 1
)

// String returns the class name.
func (c StorageClass) String() string {
	switch c {
	case StackClass:
		return "stack"
	case StaticClass:
		return "static"
	case HeapClass:
		return "heap"
	}
	return "class?"
}

// ClassOf returns the storage class of a memory expression.
func ClassOf(m isa.MemExpr) StorageClass {
	if m.Sym != "" {
		return StaticClass
	}
	switch m.Base {
	case isa.SP, isa.FP:
		return StackClass
	}
	return HeapClass
}

// memKey is the comparable interning key of a symbolic memory
// expression. Using a struct key instead of MemExpr.Key()'s formatted
// string keeps the per-reference map lookups in the DAG-construction
// hot path allocation-free (the Sym field aliases the instruction's
// existing string; nothing is built per lookup).
type memKey struct {
	sym         string
	base, index isa.Reg
	offset      int32
}

func keyOf(m isa.MemExpr) memKey {
	return memKey{sym: m.Sym, base: m.Base, index: m.Index, offset: m.Offset}
}

// Table interns the resources of one basic block. Create it once with
// NewTable and call PrepareBlock before constructing each block's DAG;
// interning state (and therefore the resource count) is per block.
//
// A Table is NOT safe for concurrent use: the parallel batch engine
// gives every worker its own Table.
type Table struct {
	model MemModel

	memIDs map[memKey]ID
	// memKeys logs memIDs insertions so reset can delete exactly the
	// previous block's entries. clear() walks every bucket of a map,
	// so after one giant block grows the map, clearing it per tiny
	// block costs the giant's capacity forever; targeted deletes keep
	// the per-block reset proportional to what the block interned.
	memKeys   []memKey
	next      ID
	dirty     [numStorageClasses]bool // class cannot be disambiguated
	wildcard  [numStorageClasses]ID   // lazily allocated per-class serializer
	singleID  ID                      // lazily allocated MemSingleModel resource
	uniqueMax int                     // distinct expressions seen in PrepareBlock

	// Reused PrepareBlock scratch: all survive across blocks so the
	// steady-state prescan performs no allocations. seenKeys logs seen
	// insertions for the same targeted-delete reset as memKeys.
	seen     map[memKey]bool
	seenKeys []memKey
	defbuf   []isa.ResRef

	skipUnique bool
}

// SetUniqueCounting toggles the unique-memory-expression count
// (UniqueMemExprs, Table 3's last column). It is on by default; the
// batch engine switches it off because the count is a reporting
// statistic only, and the dedup map it requires hashes every memory
// reference's symbolic key on every PrepareBlock — pure overhead in a
// throughput path that never reads it. With counting off,
// UniqueMemExprs reports 0.
func (t *Table) SetUniqueCounting(on bool) { t.skipUnique = !on }

// NewTable returns a table using the given memory model.
func NewTable(model MemModel) *Table {
	t := &Table{
		model:  model,
		memIDs: make(map[memKey]ID),
		seen:   make(map[memKey]bool),
	}
	t.reset()
	return t
}

// Model returns the table's memory-disambiguation model.
func (t *Table) Model() MemModel { return t.model }

func (t *Table) reset() {
	for _, k := range t.memKeys {
		delete(t.memIDs, k)
	}
	t.memKeys = t.memKeys[:0]
	t.next = NumFixed
	for i := range t.dirty {
		t.dirty[i] = false
		t.wildcard[i] = None
	}
	t.singleID = None
	t.uniqueMax = 0
}

// PrepareBlock resets per-block interning state and prescans the block:
// it counts the block's unique memory expressions (Table 3's statistic)
// and, under MemExprModel, marks a storage class dirty when any of its
// references cannot be disambiguated — a register-indexed address, a
// base register that the block itself redefines, or a missing base.
// Dirty classes collapse to one serializing resource, which keeps the
// per-expression model sound.
func (t *Table) PrepareBlock(insts []isa.Inst) {
	t.reset()
	var defined [NumFixed]bool
	for i := range insts {
		t.defbuf = insts[i].AppendDefs(t.defbuf[:0])
		for _, d := range t.defbuf {
			if d.Kind == isa.RReg || d.Kind == isa.RFReg {
				defined[d.Reg] = true
			}
		}
	}
	for _, k := range t.seenKeys {
		delete(t.seen, k)
	}
	t.seenKeys = t.seenKeys[:0]
	for i := range insts {
		op := insts[i].Op
		if !op.IsLoad() && !op.IsStore() {
			continue
		}
		m := insts[i].Mem
		if !t.skipUnique {
			if k := keyOf(m); !t.seen[k] {
				t.seen[k] = true
				t.seenKeys = append(t.seenKeys, k)
			}
		}
		c := ClassOf(m)
		switch {
		case m.HasIndex():
			t.dirty[c] = true
		case m.Sym == "" && m.Base == isa.RegNone:
			t.dirty[c] = true
		case m.Base != isa.RegNone && m.Base != isa.G0 && defined[m.Base]:
			t.dirty[c] = true
		}
	}
	t.uniqueMax = len(t.seen)
}

// UniqueMemExprs returns the number of distinct symbolic memory
// expressions found by the last PrepareBlock (Table 3, last column).
func (t *Table) UniqueMemExprs() int { return t.uniqueMax }

// NumResources returns the current size of the resource ID space. It
// grows as memory expressions are interned.
func (t *Table) NumResources() int { return int(t.next) }

// RegID returns the fixed resource ID of a register.
func RegID(r isa.Reg) ID { return ID(r) }

// MemID interns a memory expression under the table's model and returns
// its resource ID, allocating a new ID on first encounter.
func (t *Table) MemID(m isa.MemExpr) ID {
	switch t.model {
	case MemSingleModel:
		if t.singleID == None {
			t.singleID = t.alloc()
		}
		return t.singleID
	case MemClassModel:
		return t.classID(ClassOf(m))
	}
	c := ClassOf(m)
	if t.dirty[c] {
		return t.classID(c)
	}
	// Resources are word-granular: sub-word accesses (byte/half) to the
	// same aligned word must share a resource to stay sound.
	canon := m
	canon.Offset &^= 3
	k := keyOf(canon)
	if id, ok := t.memIDs[k]; ok {
		return id
	}
	id := t.alloc()
	//sched:lint-ignore noalloc steady-state: the interning map survives PrepareBlock clears, so rewrites reuse its buckets
	t.memIDs[k] = id
	//sched:lint-ignore noalloc steady-state: the insertion log's capacity converges on the largest block's unique-expression count
	t.memKeys = append(t.memKeys, k)
	return id
}

func (t *Table) classID(c StorageClass) ID {
	if t.wildcard[c] == None {
		t.wildcard[c] = t.alloc()
	}
	return t.wildcard[c]
}

func (t *Table) alloc() ID {
	id := t.next
	t.next++
	return id
}

// RefID resolves any resource reference to its ID.
func (t *Table) RefID(r isa.ResRef) ID {
	if r.Kind == isa.RMem {
		return t.MemID(r.Mem)
	}
	return RegID(r.Reg)
}
