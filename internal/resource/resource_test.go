package resource

import (
	"testing"
	"testing/quick"

	"daginsched/internal/isa"
)

func TestClassOf(t *testing.T) {
	cases := []struct {
		m isa.MemExpr
		c StorageClass
	}{
		{isa.MemExpr{Base: isa.FP, Index: isa.RegNone, Offset: -8}, StackClass},
		{isa.MemExpr{Base: isa.SP, Index: isa.RegNone, Offset: 64}, StackClass},
		{isa.MemExpr{Base: isa.G0, Index: isa.RegNone, Sym: "_x"}, StaticClass},
		{isa.MemExpr{Base: isa.O2, Index: isa.RegNone, Offset: 4}, HeapClass},
	}
	for _, c := range cases {
		if got := ClassOf(c.m); got != c.c {
			t.Errorf("ClassOf(%v) = %v, want %v", c.m, got, c.c)
		}
	}
}

func TestRegIDsAreFixed(t *testing.T) {
	if RegID(isa.G1) != 1 || RegID(isa.FP) != 30 || RegID(isa.F(0)) != 32 ||
		RegID(isa.ICC) != 64 || RegID(isa.Y) != 66 {
		t.Fatal("register IDs must equal register numbers")
	}
}

func TestMemExprModelDistinctOffsets(t *testing.T) {
	tb := NewTable(MemExprModel)
	block := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -8, isa.O0),
		isa.Load(isa.LD, isa.FP, -12, isa.O1),
		isa.Store(isa.ST, isa.O0, isa.FP, -8),
	}
	tb.PrepareBlock(block)
	a := tb.MemID(block[0].Mem)
	b := tb.MemID(block[1].Mem)
	c := tb.MemID(block[2].Mem)
	if a == b {
		t.Error("same base, different offsets must not share a resource")
	}
	if a != c {
		t.Error("identical expressions must share a resource")
	}
	if tb.UniqueMemExprs() != 2 {
		t.Errorf("UniqueMemExprs = %d, want 2", tb.UniqueMemExprs())
	}
	if tb.NumResources() != NumFixed+2 {
		t.Errorf("NumResources = %d, want %d", tb.NumResources(), NumFixed+2)
	}
}

func TestMemExprModelStorageClassesDisjoint(t *testing.T) {
	tb := NewTable(MemExprModel)
	block := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -8, isa.O0),
		isa.LoadSym(isa.LD, "_x", isa.G0, -8, isa.O1),
	}
	tb.PrepareBlock(block)
	if tb.MemID(block[0].Mem) == tb.MemID(block[1].Mem) {
		t.Error("stack and static expressions must not share a resource")
	}
}

func TestDirtyClassCollapses(t *testing.T) {
	tb := NewTable(MemExprModel)
	// %o2 is redefined in the block, so heap references via %o2 cannot
	// be disambiguated: the heap class must collapse.
	block := []isa.Inst{
		isa.Load(isa.LD, isa.O2, 0, isa.O3),
		isa.RIR(isa.ADD, isa.O2, 4, isa.O2),
		isa.Load(isa.LD, isa.O2, 8, isa.O4),
		isa.Load(isa.LD, isa.FP, -4, isa.O5), // stack stays clean
	}
	tb.PrepareBlock(block)
	a := tb.MemID(block[0].Mem)
	b := tb.MemID(block[2].Mem)
	s := tb.MemID(block[3].Mem)
	if a != b {
		t.Error("dirty heap class must serialize on one resource")
	}
	if a == s {
		t.Error("clean stack class must stay fine-grained")
	}
}

func TestIndexedAddressDirtiesClass(t *testing.T) {
	tb := NewTable(MemExprModel)
	block := []isa.Inst{
		{Op: isa.LD, RD: isa.O0, Mem: isa.MemExpr{Base: isa.O1, Index: isa.O2}},
		isa.Load(isa.LD, isa.O3, 16, isa.O4),
	}
	tb.PrepareBlock(block)
	if tb.MemID(block[0].Mem) != tb.MemID(block[1].Mem) {
		t.Error("register-indexed address must serialize its class")
	}
}

func TestMemSingleModel(t *testing.T) {
	tb := NewTable(MemSingleModel)
	block := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -8, isa.O0),
		isa.LoadSym(isa.LD, "_x", isa.G0, 0, isa.O1),
	}
	tb.PrepareBlock(block)
	if tb.MemID(block[0].Mem) != tb.MemID(block[1].Mem) {
		t.Error("single model must map everything to one resource")
	}
	if tb.NumResources() != NumFixed+1 {
		t.Errorf("NumResources = %d", tb.NumResources())
	}
}

func TestMemClassModel(t *testing.T) {
	tb := NewTable(MemClassModel)
	block := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -8, isa.O0),
		isa.Load(isa.LD, isa.FP, -12, isa.O1),
		isa.LoadSym(isa.LD, "_x", isa.G0, 0, isa.O2),
	}
	tb.PrepareBlock(block)
	a := tb.MemID(block[0].Mem)
	b := tb.MemID(block[1].Mem)
	c := tb.MemID(block[2].Mem)
	if a != b {
		t.Error("class model: same class must share a resource")
	}
	if a == c {
		t.Error("class model: different classes must not share")
	}
}

func TestPrepareBlockResets(t *testing.T) {
	tb := NewTable(MemExprModel)
	b1 := []isa.Inst{isa.Load(isa.LD, isa.FP, -8, isa.O0)}
	tb.PrepareBlock(b1)
	tb.MemID(b1[0].Mem)
	n1 := tb.NumResources()
	b2 := []isa.Inst{isa.Load(isa.LD, isa.FP, -99, isa.O0)}
	tb.PrepareBlock(b2)
	if tb.NumResources() != NumFixed {
		t.Errorf("PrepareBlock did not reset interning: %d", tb.NumResources())
	}
	tb.MemID(b2[0].Mem)
	if tb.NumResources() != n1 {
		t.Errorf("fresh block should re-use the ID space from %d", NumFixed)
	}
}

func TestRefID(t *testing.T) {
	tb := NewTable(MemExprModel)
	ld := isa.Load(isa.LD, isa.FP, -8, isa.O0)
	tb.PrepareBlock([]isa.Inst{ld})
	uses := ld.Uses()
	if tb.RefID(uses[0]) != RegID(isa.FP) {
		t.Error("register ref resolves to register ID")
	}
	if tb.RefID(uses[1]) < NumFixed {
		t.Error("memory ref must resolve above the fixed space")
	}
}

// Property: interning is a function — equal keys always produce equal
// IDs, distinct clean same-class expressions produce distinct IDs.
func TestQuickInterningConsistent(t *testing.T) {
	f := func(offs []int16) bool {
		tb := NewTable(MemExprModel)
		var block []isa.Inst
		for _, o := range offs {
			block = append(block, isa.Load(isa.LD, isa.FP, int32(o), isa.O0))
		}
		tb.PrepareBlock(block)
		byOff := map[int32]ID{}
		for i, o := range offs {
			word := int32(o) &^ 3 // resources are word-granular
			id := tb.MemID(block[i].Mem)
			if prev, ok := byOff[word]; ok && prev != id {
				return false
			}
			byOff[word] = id
		}
		ids := map[ID]bool{}
		for _, id := range byOff {
			if ids[id] {
				return false // two offsets shared an ID
			}
			ids[id] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelString(t *testing.T) {
	if MemExprModel.String() != "expr" || MemClassModel.String() != "class" ||
		MemSingleModel.String() != "single" {
		t.Error("MemModel names wrong")
	}
	if StackClass.String() != "stack" || StaticClass.String() != "static" ||
		HeapClass.String() != "heap" {
		t.Error("StorageClass names wrong")
	}
}
